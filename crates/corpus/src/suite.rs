//! The matrix suites: Table 1 analogues and the 490-matrix corpus.
//!
//! SuiteSparse is unavailable offline, so the experiments run on synthetic
//! analogues:
//!
//! * [`table1_suite`] builds one matrix per Table 1 row, matching the
//!   original's row count, nonzeros-per-row and structural family
//!   (FEM block-banded, circuit, grid, power-law, arrow, …), scaled down
//!   by the machine scale factor;
//! * [`corpus`] builds the evaluation population standing in for the 490
//!   SuiteSparse matrices (> 1 M nonzeros, working sets from just above
//!   one L2 segment to far beyond the aggregate cache), log-uniformly
//!   spread in size and cycling through all structural families.

use crate::banded::{arrow, block_banded, random_banded, tridiag_plus_random};
use crate::random::{power_law, uniform_random};
use crate::stencil::{laplacian_2d, laplacian_3d, stencil_3d_27pt};
use sparsemat::CsrMatrix;

/// A generated matrix with its provenance.
pub struct NamedMatrix {
    /// Display name (for Table 1 analogues, the original matrix's name).
    pub name: String,
    /// Structural family of the generator.
    pub family: &'static str,
    /// The matrix.
    pub matrix: CsrMatrix,
}

/// Builds the 18 Table 1 analogues at `1/scale` of the original sizes.
///
/// Row counts and nonzeros-per-row follow the paper's Table 1; the
/// structural family is chosen to match the original's domain (protein,
/// circuit, FEM, optimisation, graph).
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn table1_suite(scale: usize) -> Vec<NamedMatrix> {
    assert!(scale > 0, "scale must be positive");
    let s = scale;
    // (name, rows, nnz/row, family builder)
    let mk = |name: &str, family: &'static str, matrix: CsrMatrix| NamedMatrix {
        name: name.to_string(),
        family,
        matrix,
    };
    let grid2 = |rows: usize| {
        let side = (rows as f64).sqrt().round() as usize;
        laplacian_2d(side.max(2), side.max(2))
    };
    let grid3 = |rows: usize| {
        let side = (rows as f64).cbrt().round() as usize;
        laplacian_3d(side.max(2), side.max(2), side.max(2))
    };
    let grid27 = |rows: usize| {
        let side = (rows as f64).cbrt().round() as usize;
        stencil_3d_27pt(side.max(2), side.max(2), side.max(2))
    };
    let blockb = |rows: usize, block: usize, per_row: usize, seed: u64| {
        let n = rows.div_ceil(block) * block;
        let blocks_per_row = (per_row / block).max(2);
        block_banded(n, block, blocks_per_row, blocks_per_row * 3, seed)
    };

    vec![
        mk("pdb1HYS", "block-banded", blockb(36_000 / s, 6, 120, 101)),
        mk(
            "Hamrle3",
            "circuit",
            tridiag_plus_random(1_447_000 / s, 1, 102),
        ),
        mk("G3_circuit", "grid-2d", grid2(1_585_000 / s)),
        mk("shipsec1", "block-banded", blockb(141_000 / s, 6, 55, 103)),
        mk("pwtk", "block-banded", blockb(218_000 / s, 6, 53, 104)),
        mk(
            "kkt_power",
            "power-law",
            power_law(2_063_000 / s, 7, 0.8, 105),
        ),
        mk(
            "Si41Ge41H72",
            "banded",
            random_banded(186_000 / s, (186_000 / s) / 8, 80, 106),
        ),
        // Border sized so the average row length lands near the original's
        // ~39 nonzeros/row: nnz ~ n * (block + border).
        mk("bundle_adj", "arrow", arrow(513_000 / s, 9, 30, 107)),
        mk("msdoor", "block-banded", blockb(416_000 / s, 6, 49, 108)),
        mk("Fault_639", "block-banded", blockb(639_000 / s, 6, 45, 109)),
        mk(
            "af_shell10",
            "block-banded",
            blockb(1_508_000 / s, 5, 35, 110),
        ),
        mk("Serena", "block-banded", blockb(1_391_000 / s, 6, 46, 111)),
        mk("bone010", "grid-27pt", grid27(987_000 / s)),
        mk("audikw_1", "block-banded", blockb(944_000 / s, 9, 82, 112)),
        // channel-500 is a 3-D mesh graph; the 7-point grid is the closest
        // structural family (the analogue ends up slightly sparser per row).
        mk("channel-500x100x100-b050", "grid-3d", grid3(4_802_000 / s)),
        mk("nlpkkt120", "grid-27pt", grid27(3_542_000 / s)),
        mk(
            "delaunay_n24",
            "random",
            uniform_random(16_777_000 / s, 6, 114),
        ),
        mk("ML_Geer", "block-banded", blockb(1_504_000 / s, 6, 74, 115)),
    ]
}

/// Builds the evaluation corpus of `count` matrices at machine scale
/// `scale` (pass 16 with `MachineConfig::a64fx_scaled(16)`).
///
/// Matrix data sizes are log-uniform between ~1.2× one scaled L2 segment
/// and ~40× it — mirroring the paper's population (smallest matrix 11 MiB
/// vs. the 8 MiB segment) — cycling through seven structural families.
///
/// # Panics
///
/// Panics if `count` is zero or `scale` is zero.
pub fn corpus(count: usize, scale: usize, seed: u64) -> Vec<NamedMatrix> {
    assert!(count > 0, "need at least one matrix");
    assert!(scale > 0, "scale must be positive");
    // Size targets relative to the scaled L2 segment (8 MiB / scale).
    let segment_bytes = (8usize << 20) / scale;
    let min_bytes = segment_bytes + segment_bytes / 4; // 1.25x
    let max_bytes = segment_bytes * 40;
    let log_lo = (min_bytes as f64).ln();
    let log_hi = (max_bytes as f64).ln();

    (0..count)
        .map(|i| {
            let frac = (i as f64 + 0.5) / count as f64;
            // Deterministic low-discrepancy jitter from the seed.
            let jitter = (((seed ^ i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64
                / (1u64 << 24) as f64
                - 0.5)
                / count as f64;
            let target_bytes = (log_lo + (frac + jitter).clamp(0.0, 1.0) * (log_hi - log_lo)).exp();
            let mseed = seed.wrapping_add(1000 + i as u64);
            // Family weights mirror the SuiteSparse population the paper
            // samples: predominantly structured PDE/FEM matrices with good
            // x locality, a minority of irregular graph/optimisation
            // matrices (the paper's §4.5.5 finds only 42/490 matrices with
            // x-dominated traffic).
            const FAMILIES: [usize; 14] = [2, 5, 1, 2, 6, 4, 5, 2, 1, 6, 3, 5, 0, 4];
            build_family(FAMILIES[i % 14], target_bytes as usize, mseed, i)
        })
        .collect()
}

/// Builds one corpus member of the given family sized to ~`target_bytes`
/// of CSR data.
fn build_family(family: usize, target_bytes: usize, seed: u64, index: usize) -> NamedMatrix {
    // CSR bytes ~ nnz * 12 + rows * 8; with p = nnz/row: rows ~ target / (12p + 8).
    let named = |name: String, family: &'static str, matrix: CsrMatrix| NamedMatrix {
        name,
        family,
        matrix,
    };
    match family {
        0 => {
            let p = 8 + (seed % 9) as usize; // 8..16
            let rows = (target_bytes / (12 * p + 8)).max(64);
            named(
                format!("rand-{index}"),
                "random",
                uniform_random(rows, p, seed),
            )
        }
        1 => {
            let p = 27;
            let rows = (target_bytes / (12 * p + 8)).max(64);
            let side = ((rows as f64).cbrt().round() as usize).max(2);
            named(
                format!("grid27-{index}"),
                "grid-27pt",
                stencil_3d_27pt(side, side, side),
            )
        }
        2 => {
            let block = 6;
            let per_row = 30 + (seed % 60) as usize; // 30..90
            let rows = (target_bytes / (12 * per_row + 8)).max(64);
            let n = rows.div_ceil(block) * block;
            named(
                format!("fem-{index}"),
                "block-banded",
                block_banded(
                    n,
                    block,
                    (per_row / block).max(2),
                    (per_row / block) * 3,
                    seed,
                ),
            )
        }
        3 => {
            let p = 4 + (seed % 5) as usize;
            let rows = (target_bytes / (12 * p + 8)).max(64);
            named(
                format!("powlaw-{index}"),
                "power-law",
                power_law(rows, p, 0.6 + (seed % 5) as f64 * 0.15, seed),
            )
        }
        4 => {
            let rows = (target_bytes / (12 * 4 + 8)).max(64);
            named(
                format!("circuit-{index}"),
                "circuit",
                tridiag_plus_random(rows, 1, seed),
            )
        }
        5 => {
            let p = 10 + (seed % 40) as usize;
            let rows = (target_bytes / (12 * p + 8)).max(64);
            let band = (rows / 16).max(8);
            named(
                format!("banded-{index}"),
                "banded",
                random_banded(rows, band, p, seed),
            )
        }
        _ => {
            let rows = (target_bytes / (12 * 7 + 8)).max(64);
            let side = ((rows as f64).cbrt().round() as usize).max(2);
            named(
                format!("grid7-{index}"),
                "grid-3d",
                laplacian_3d(side, side, side),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::MatrixStats;

    #[test]
    fn table1_matches_paper_shapes() {
        let suite = table1_suite(16);
        assert_eq!(suite.len(), 18);
        let by_name: std::collections::HashMap<&str, &NamedMatrix> =
            suite.iter().map(|m| (m.name.as_str(), m)).collect();
        // Row counts within 10% of the scaled Table 1 values.
        let expect_rows = [
            ("pdb1HYS", 36_000 / 16),
            ("Hamrle3", 1_447_000 / 16),
            ("delaunay_n24", 16_777_000 / 16),
        ];
        for (name, rows) in expect_rows {
            let got = by_name[name].matrix.num_rows();
            let err = (got as f64 - rows as f64).abs() / rows as f64;
            assert!(err < 0.10, "{name}: {got} vs {rows}");
        }
        // Nonzeros-per-row in the right ballpark for a dense FEM matrix.
        let s = MatrixStats::compute(&by_name["audikw_1"].matrix);
        assert!(
            s.row_nnz_mean > 40.0,
            "audikw analog too sparse: {}",
            s.row_nnz_mean
        );
        // And sparse for the circuit matrix.
        let s = MatrixStats::compute(&by_name["Hamrle3"].matrix);
        assert!(s.row_nnz_mean < 5.0);
    }

    #[test]
    fn corpus_sizes_span_the_paper_range() {
        let c = corpus(20, 64, 42);
        assert_eq!(c.len(), 20);
        let hier = machine::HierarchyConfig::a64fx().scaled(64);
        let segment = machine::CacheHierarchy::last_level(&hier)
            .geometry
            .size_bytes;
        let sizes: Vec<usize> = c.iter().map(|m| m.matrix.matrix_bytes()).collect();
        // Every matrix exceeds one L2 segment (the paper's selection rule).
        for (m, &b) in c.iter().zip(&sizes) {
            assert!(
                b > segment,
                "{} is smaller ({} B) than one segment",
                m.name,
                b
            );
        }
        // The population spans more than a decade of sizes.
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / min > 8.0, "span {min}..{max}");
    }

    #[test]
    fn corpus_cycles_families() {
        let c = corpus(14, 64, 7);
        let families: std::collections::HashSet<&str> = c.iter().map(|m| m.family).collect();
        assert!(families.len() >= 7, "families: {families:?}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(5, 64, 9);
        let b = corpus(5, 64, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn corpus_matrices_are_square_and_nonempty() {
        for m in corpus(10, 64, 3) {
            assert_eq!(m.matrix.num_rows(), m.matrix.num_cols(), "{}", m.name);
            assert!(m.matrix.nnz() > 0, "{}", m.name);
        }
    }
}
