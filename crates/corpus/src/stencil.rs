//! Structured-grid (stencil) matrix generators.
//!
//! Discretised Laplacians on 2-D and 3-D grids: the archetypal
//! well-structured sparse matrices (narrow effective bandwidth, uniform
//! rows), standing in for the PDE-derived part of SuiteSparse
//! (`G3_circuit`-like grids, `nlpkkt`-like structured KKT systems).

use sparsemat::{CooMatrix, CsrMatrix};

/// 5-point Laplacian on an `nx`-by-`ny` grid (matrix order `nx*ny`).
pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |i: usize, j: usize| i * ny + j;
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 7-point Laplacian on an `nx`-by-`ny`-by-`nz` grid.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                coo.push(r, r, 6.0);
                if i > 0 {
                    coo.push(r, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(r, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(r, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.push(r, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 27-point stencil on an `nx`-by-`ny`-by-`nz` grid (dense 3×3×3
/// neighbourhood), a `bone010`/`audikw`-like heavy FEM pattern.
pub fn stencil_3d_27pt(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 27 * n);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ii >= 0
                                && jj >= 0
                                && kk >= 0
                                && (ii as usize) < nx
                                && (jj as usize) < ny
                                && (kk as usize) < nz
                            {
                                let c = idx(ii as usize, jj as usize, kk as usize);
                                let v = if c == r { 26.0 } else { -1.0 };
                                coo.push(r, c, v);
                            }
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::MatrixStats;

    #[test]
    fn laplacian_2d_structure() {
        let m = laplacian_2d(4, 5);
        assert_eq!(m.num_rows(), 20);
        // n diagonal entries plus two per grid edge:
        // horizontal edges nx*(ny-1) = 16, vertical (nx-1)*ny = 15.
        assert_eq!(m.nnz(), 20 + 2 * (16 + 15));
        // Symmetric pattern, diagonally dominant.
        assert_eq!(m.get(0, 0), Some(4.0));
        assert_eq!(m.get(0, 1), Some(-1.0));
        assert_eq!(m.get(1, 0), Some(-1.0));
    }

    #[test]
    fn laplacian_2d_row_sums_zero_in_interior() {
        let m = laplacian_2d(5, 5);
        // Interior row (2,2) -> r = 12: 4 - 4 = 0.
        let sum: f64 = m.row(12).map(|(_, v)| v).sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn laplacian_3d_structure() {
        let m = laplacian_3d(3, 3, 3);
        assert_eq!(m.num_rows(), 27);
        // Centre point has full 7-point stencil.
        assert_eq!(m.row_nnz(13), 7);
        assert_eq!(m.get(13, 13), Some(6.0));
        let s = MatrixStats::compute(&m);
        assert!(s.bandwidth <= 9); // ny * nz
    }

    #[test]
    fn stencil_27pt_centre_row() {
        let m = stencil_3d_27pt(3, 3, 3);
        assert_eq!(m.row_nnz(13), 27);
        assert_eq!(m.get(13, 13), Some(26.0));
        // Corner has a 2x2x2 neighbourhood.
        assert_eq!(m.row_nnz(0), 8);
    }

    #[test]
    fn stencils_are_symmetric_patterns() {
        let m = laplacian_3d(4, 3, 2);
        let t = m.transpose();
        assert_eq!(m, t);
    }
}
