//! FNV-1a structure fingerprinting shared by the storage formats.
//!
//! Every format hashes its sparsity structure with the same FNV-1a core
//! over a fixed little-endian serialization, so fingerprints are stable
//! across runs, platforms and processes. Non-CSR formats prepend a format
//! tag (and their format parameters) to the stream, guaranteeing that two
//! storage views of the same matrix can never share a fingerprint — the
//! engine uses fingerprints as profile-cache keys.

const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over little-endian byte streams.
pub(crate) struct Fnv(u64);

impl Fnv {
    /// Starts a new hash at the FNV offset basis.
    pub(crate) fn new() -> Self {
        Fnv(OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub(crate) fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Folds a `u64` in little-endian order.
    pub(crate) fn mix_u64(&mut self, v: u64) {
        self.mix(&v.to_le_bytes());
    }

    /// The finished 64-bit hash.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a() {
        // FNV-1a test vector: hash of "a" is 0xaf63dc4c8601ec8c.
        let mut h = Fnv::new();
        h.mix(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn mix_u64_equals_mix_of_le_bytes() {
        let mut a = Fnv::new();
        a.mix_u64(0x0123_4567_89AB_CDEF);
        let mut b = Fnv::new();
        b.mix(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
