//! Coordinate (triplet) sparse matrix format.
//!
//! COO is the assembly format: entries can be pushed in any order and
//! duplicates are allowed until conversion. [`CooMatrix::to_csr`] sorts,
//! sums duplicates and produces a canonical [`CsrMatrix`].

use crate::csr::CsrMatrix;

/// A sparse matrix in coordinate (triplet) format.
///
/// Entries are stored in insertion order; rows, columns and values are kept
/// in parallel arrays. The matrix dimensions are fixed at construction and
/// every pushed entry is bounds-checked against them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooMatrix {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<usize>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty COO matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `num_cols` does not fit in `u32`, since column indices are
    /// stored as 4-byte integers throughout this workspace (matching the
    /// paper's `colidx` accounting).
    pub fn new(num_rows: usize, num_cols: usize) -> Self {
        assert!(
            u32::try_from(num_cols).is_ok(),
            "number of columns {num_cols} exceeds u32 range"
        );
        CooMatrix {
            num_rows,
            num_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity reserved for `nnz` entries.
    pub fn with_capacity(num_rows: usize, num_cols: usize, nnz: usize) -> Self {
        let mut m = Self::new(num_rows, num_cols);
        m.rows.reserve(nnz);
        m.cols.reserve(nnz);
        m.values.reserve(nnz);
        m
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries, including any duplicates not yet summed.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends the entry `(row, col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.num_rows,
            "row {row} out of bounds ({})",
            self.num_rows
        );
        assert!(
            col < self.num_cols,
            "col {col} out of bounds ({})",
            self.num_cols
        );
        self.rows.push(row);
        self.cols.push(col as u32);
        self.values.push(value);
    }

    /// Appends the entry, and its transpose mirror if off-diagonal.
    ///
    /// Convenience for assembling symmetric matrices from one triangle, as
    /// Matrix Market symmetric files store them.
    pub fn push_symmetric(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Iterates over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c as usize, v))
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    ///
    /// Sorting is done with a counting pass over rows (O(nnz + rows)), then
    /// each row is sorted by column and duplicates within a row are summed.
    /// The resulting CSR is canonical: strictly increasing column indices
    /// within each row.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row.
        let mut row_counts = vec![0i64; self.num_rows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.num_rows {
            row_counts[i + 1] += row_counts[i];
        }
        let rowptr_raw = row_counts.clone();
        let mut next = row_counts;
        let mut cols = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        for i in 0..self.nnz() {
            let r = self.rows[i];
            let dst = next[r] as usize;
            cols[dst] = self.cols[i];
            vals[dst] = self.values[i];
            next[r] += 1;
        }

        // Sort within each row by column, then compact duplicates.
        let mut out_cols: Vec<u32> = Vec::with_capacity(self.nnz());
        let mut out_vals: Vec<f64> = Vec::with_capacity(self.nnz());
        let mut out_rowptr: Vec<i64> = Vec::with_capacity(self.num_rows + 1);
        out_rowptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.num_rows {
            let (b, e) = (rowptr_raw[r] as usize, rowptr_raw[r + 1] as usize);
            scratch.clear();
            scratch.extend(cols[b..e].iter().copied().zip(vals[b..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_rowptr.push(out_cols.len() as i64);
        }

        CsrMatrix::from_parts(self.num_rows, self.num_cols, out_rowptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_roundtrip() {
        let coo = CooMatrix::new(3, 4);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_cols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn unsorted_entries_become_canonical() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 3.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(0, 0, 0.5);
        let csr = coo.to_csr();
        assert_eq!(csr.rowptr(), &[0, 2, 4]);
        assert_eq!(csr.colidx(), &[0, 1, 0, 2]);
        assert_eq!(csr.values(), &[0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(0, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.colidx(), &[0, 1]);
        assert_eq!(csr.values(), &[-1.0, 3.5]);
    }

    #[test]
    fn symmetric_push_mirrors_offdiagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 0, 1.0);
        coo.push_symmetric(2, 0, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 2), Some(5.0));
        assert_eq!(csr.get(2, 0), Some(5.0));
        assert_eq!(csr.get(0, 0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "row 2 out of bounds")]
    fn row_bounds_checked() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "col 7 out of bounds")]
    fn col_bounds_checked() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 7, 1.0);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 4.0);
        coo.push(0, 0, 1.0);
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(1, 1, 4.0), (0, 0, 1.0)]);
    }
}
