//! Sparse matrix substrate for the A64FX SpMV locality study.
//!
//! This crate provides the sparse-matrix machinery the paper's SpMV kernel
//! and locality model are built on:
//!
//! * [`coo::CooMatrix`] — coordinate (triplet) format used as an assembly
//!   and interchange format.
//! * [`csr::CsrMatrix`] — Compressed Sparse Row, the storage format studied
//!   by the paper (Listing 1). Value and index types match the paper's
//!   accounting exactly: `f64` nonzero values (8 bytes), `u32` column
//!   indices (4 bytes) and `i64` row pointers (8 bytes).
//! * [`spmv`] — sequential, row-parallel and merge-based CSR SpMV kernels
//!   computing `y += A*x`.
//! * [`partition`] — static row partitioning (contiguous row blocks, as an
//!   OpenMP static worksharing loop would produce) and balanced-nonzero
//!   partitioning (the load-balancing optimisation of Alappat et al.
//!   discussed in the paper's §4.2).
//! * [`stats`] — per-matrix statistics used by the model and evaluation:
//!   mean and coefficient of variation of nonzeros per row, bandwidth, etc.
//! * [`mm`] — Matrix Market (`.mtx`) reader/writer so real SuiteSparse
//!   matrices can be used when available.
//! * [`reorder`] — (Reverse) Cuthill–McKee reordering, the locality
//!   optimisation the paper cites from Alappat et al.
//! * [`sell`] — the SELL-C-σ sliced-ELLPACK format the paper's related
//!   work highlights as the faster A64FX alternative to CSR.
//!
//! # Quick example
//!
//! ```
//! use sparsemat::coo::CooMatrix;
//! use sparsemat::spmv;
//!
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 2.0);
//! coo.push(1, 0, 1.0);
//! coo.push(1, 1, 3.0);
//! let a = coo.to_csr();
//!
//! let x = vec![1.0, 1.0];
//! let mut y = vec![0.0, 0.0];
//! spmv::spmv_seq(&a, &x, &mut y);
//! assert_eq!(y, vec![2.0, 4.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coo;
pub mod csr;
mod fingerprint;
pub mod mm;
pub mod partition;
pub mod reorder;
pub mod sell;
pub mod spmv;
pub mod stats;
pub mod thread;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use partition::RowPartition;
pub use sell::SellMatrix;
pub use stats::MatrixStats;
pub use thread::join_propagating;

/// Size in bytes of a nonzero matrix value (`f64`), as in the paper.
pub const VALUE_BYTES: usize = 8;
/// Size in bytes of a column index (`u32`), as in the paper.
pub const COLIDX_BYTES: usize = 4;
/// Size in bytes of a row pointer (`i64`), as in the paper.
pub const ROWPTR_BYTES: usize = 8;
/// Size in bytes of a vector element (`f64`).
pub const VECTOR_BYTES: usize = 8;
