//! SELL-C-σ sliced-ELLPACK storage format.
//!
//! The paper's related work notes that Alappat et al. found SELL-C-σ to
//! outperform CSR on the A64FX (its chunk-major layout vectorises cleanly
//! with 512-bit SVE), while leaving its sector-cache interaction
//! unexplored. This implementation makes the format available as an
//! extension: rows are sorted by length within windows of `σ` rows, packed
//! into chunks of `C` rows stored column-major, and padded to the longest
//! row of each chunk.

use crate::csr::CsrMatrix;

/// A sparse matrix in SELL-C-σ format.
#[derive(Clone, Debug, PartialEq)]
pub struct SellMatrix {
    num_rows: usize,
    num_cols: usize,
    nnz: usize,
    chunk_size: usize,
    sigma: usize,
    /// Start of each chunk in `values`/`colidx` (length `num_chunks + 1`).
    chunk_ptr: Vec<usize>,
    /// Width (padded row length) of each chunk.
    chunk_width: Vec<u32>,
    /// Column indices, chunk-major (`chunk_width * chunk_size` per chunk,
    /// padding entries repeat the row's last valid column).
    colidx: Vec<u32>,
    /// Values, chunk-major (padding entries are 0.0).
    values: Vec<f64>,
    /// `row_perm[packed_row] = original_row`: the sorting permutation.
    row_perm: Vec<usize>,
}

impl SellMatrix {
    /// Converts a CSR matrix to SELL-C-σ.
    ///
    /// `chunk_size` is the paper's `C` (rows per chunk, the SIMD width —
    /// 8 for 512-bit SVE on f64); `sigma` is the sorting window in rows
    /// and is rounded up to a multiple of `chunk_size`. `sigma <=
    /// chunk_size` means no reordering beyond the natural row order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn from_csr(a: &CsrMatrix, chunk_size: usize, sigma: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let n = a.num_rows();
        let sigma = sigma.max(chunk_size).div_ceil(chunk_size) * chunk_size;

        // Sort rows by descending length within each sigma window.
        let mut row_perm: Vec<usize> = (0..n).collect();
        for window in row_perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r)));
        }

        let num_chunks = n.div_ceil(chunk_size);
        let mut chunk_ptr = Vec::with_capacity(num_chunks + 1);
        let mut chunk_width = Vec::with_capacity(num_chunks);
        chunk_ptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();

        for c in 0..num_chunks {
            let rows = &row_perm[c * chunk_size..((c + 1) * chunk_size).min(n)];
            let width = rows.iter().map(|&r| a.row_nnz(r)).max().unwrap_or(0);
            chunk_width.push(width as u32);
            // Column-major within the chunk: entry (j, i) = j-th nonzero of
            // the i-th row of the chunk.
            for j in 0..width {
                for lane in 0..chunk_size {
                    if let Some(&r) = rows.get(lane) {
                        let range = a.row_range(r);
                        if j < range.len() {
                            colidx.push(a.colidx()[range.start + j]);
                            values.push(a.values()[range.start + j]);
                        } else if !range.is_empty() {
                            // Pad with the row's last column (harmless
                            // gather target) and a zero value.
                            colidx.push(a.colidx()[range.end - 1]);
                            values.push(0.0);
                        } else {
                            colidx.push(0);
                            values.push(0.0);
                        }
                    } else {
                        // Lane beyond the last row of a ragged final chunk.
                        colidx.push(0);
                        values.push(0.0);
                    }
                }
            }
            chunk_ptr.push(values.len());
        }

        SellMatrix {
            num_rows: n,
            num_cols: a.num_cols(),
            nnz: a.nnz(),
            chunk_size,
            sigma,
            chunk_ptr,
            chunk_width,
            colidx,
            values,
            row_perm,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of (unpadded) nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The chunk size `C`.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The (rounded-up) sorting window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Stored entries including padding.
    pub fn stored_entries(&self) -> usize {
        self.values.len()
    }

    /// Padding overhead: `stored / nnz` (1.0 = no padding).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.stored_entries() as f64 / self.nnz as f64
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunk_width.len()
    }

    /// Per-chunk start offsets into the padded arrays
    /// (`num_chunks + 1` entries).
    pub fn chunk_ptr(&self) -> &[usize] {
        &self.chunk_ptr
    }

    /// Per-chunk padded widths.
    pub fn chunk_width(&self) -> &[u32] {
        &self.chunk_width
    }

    /// The padded, chunk-major column indices.
    pub fn colidx(&self) -> &[u32] {
        &self.colidx
    }

    /// The padded, chunk-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The row permutation (`row_perm[packed] = original`).
    pub fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }

    /// A stable, *format-tagged* 64-bit fingerprint of the stored
    /// structure: a `"sell-c-sigma"` tag, the format parameters `C` and
    /// `σ`, the dimensions, and the chunk/permutation/index arrays that
    /// determine the access pattern. Values are excluded, exactly as in
    /// [`CsrMatrix::fingerprint`].
    ///
    /// The leading tag guarantees a SELL view of a matrix never hashes
    /// equal to the CSR view of the same (or any other) matrix, so
    /// fingerprint-keyed caches cannot serve one format's profile for the
    /// other.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv::new();
        h.mix(b"sell-c-sigma");
        h.mix_u64(self.chunk_size as u64);
        h.mix_u64(self.sigma as u64);
        h.mix_u64(self.num_rows as u64);
        h.mix_u64(self.num_cols as u64);
        for &p in &self.chunk_ptr {
            h.mix_u64(p as u64);
        }
        for &w in &self.chunk_width {
            h.mix(&w.to_le_bytes());
        }
        for &c in &self.colidx {
            h.mix(&c.to_le_bytes());
        }
        for &r in &self.row_perm {
            h.mix_u64(r as u64);
        }
        h.finish()
    }

    /// SpMV: `y ← y + A·x` (accumulating, like the CSR kernels).
    ///
    /// # Panics
    ///
    /// Panics if vector lengths do not match.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols, "x length must equal num_cols");
        assert_eq!(y.len(), self.num_rows, "y length must equal num_rows");
        let c = self.chunk_size;
        let mut acc = vec![0.0f64; c];
        for (k, &width) in self.chunk_width.iter().enumerate() {
            let base = self.chunk_ptr[k];
            let rows = &self.row_perm[k * c..((k + 1) * c).min(self.num_rows)];
            acc[..c].iter_mut().for_each(|v| *v = 0.0);
            for j in 0..width as usize {
                let off = base + j * c;
                // The lane loop is the SIMD dimension on real hardware.
                for (lane, a) in acc.iter_mut().enumerate().take(c) {
                    let v = self.values[off + lane];
                    let col = self.colidx[off + lane] as usize;
                    *a += v * x[col];
                }
            }
            for (lane, &r) in rows.iter().enumerate() {
                y[r] += acc[lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::spmv::spmv_seq;

    fn random_matrix(rows: usize, cols: usize, max_per_row: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let mut coo = CooMatrix::new(rows, cols);
        for r in 0..rows {
            let len = next() % (max_per_row + 1);
            for _ in 0..len {
                coo.push(r, next() % cols, (next() % 100) as f64 / 10.0 - 5.0);
            }
        }
        coo.to_csr()
    }

    fn assert_spmv_matches(a: &CsrMatrix, c: usize, sigma: usize) {
        let sell = SellMatrix::from_csr(a, c, sigma);
        let x: Vec<f64> = (0..a.num_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_csr: Vec<f64> = (0..a.num_rows()).map(|i| i as f64 * 0.1).collect();
        let mut y_sell = y_csr.clone();
        spmv_seq(a, &x, &mut y_csr);
        sell.spmv(&x, &mut y_sell);
        for (i, (s, g)) in y_csr.iter().zip(&y_sell).enumerate() {
            assert!(
                (s - g).abs() < 1e-10,
                "row {i}: {s} vs {g} (C={c}, sigma={sigma})"
            );
        }
    }

    #[test]
    fn spmv_matches_csr_various_shapes() {
        let a = random_matrix(100, 80, 12, 5);
        for (c, sigma) in [(1, 1), (4, 4), (8, 8), (8, 64), (16, 128), (7, 21)] {
            assert_spmv_matches(&a, c, sigma);
        }
    }

    #[test]
    fn spmv_matches_with_empty_rows_and_ragged_tail() {
        // 13 rows (not a multiple of typical C), some empty.
        let mut coo = CooMatrix::new(13, 13);
        for r in [0usize, 3, 12] {
            coo.push(r, r, 2.0);
            coo.push(r, (r + 5) % 13, -1.0);
        }
        let a = coo.to_csr();
        for c in [4, 8] {
            assert_spmv_matches(&a, c, 4 * c);
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding_on_skewed_rows() {
        // Alternating long/short rows: without sorting every chunk pads the
        // short rows to the long width; with a big sigma, rows of similar
        // length share chunks.
        let mut coo = CooMatrix::new(64, 64);
        let mut state = 9u64;
        for r in 0..64 {
            let len = if r % 2 == 0 { 16 } else { 1 };
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                coo.push(r, (state >> 33) as usize % 64, 1.0);
            }
        }
        let a = coo.to_csr();
        let unsorted = SellMatrix::from_csr(&a, 8, 8);
        let sorted = SellMatrix::from_csr(&a, 8, 64);
        assert!(
            sorted.padding_ratio() < unsorted.padding_ratio(),
            "{} vs {}",
            sorted.padding_ratio(),
            unsorted.padding_ratio()
        );
        assert!(sorted.padding_ratio() < 1.2);
        // Sorting must not change the result.
        assert_spmv_matches(&a, 8, 64);
    }

    #[test]
    fn uniform_rows_have_no_padding() {
        let a = CsrMatrix::identity(32);
        let sell = SellMatrix::from_csr(&a, 8, 8);
        assert_eq!(sell.padding_ratio(), 1.0);
        assert_eq!(sell.stored_entries(), 32);
    }

    #[test]
    fn accessors() {
        let a = random_matrix(20, 20, 4, 11);
        let sell = SellMatrix::from_csr(&a, 8, 10);
        assert_eq!(sell.num_rows(), 20);
        assert_eq!(sell.num_cols(), 20);
        assert_eq!(sell.nnz(), a.nnz());
        assert_eq!(sell.chunk_size(), 8);
        // Sigma rounds up to a chunk multiple.
        assert_eq!(sell.sigma(), 16);
    }

    #[test]
    fn fingerprint_is_format_tagged() {
        let a = random_matrix(40, 40, 6, 3);
        let sell = SellMatrix::from_csr(&a, 4, 8);
        // The SELL fingerprint never equals the CSR fingerprint of the
        // source structure, and it depends on the format parameters.
        assert_ne!(sell.fingerprint(), a.fingerprint());
        let other = SellMatrix::from_csr(&a, 8, 8);
        assert_ne!(sell.fingerprint(), other.fingerprint());
        // Same parameters, same structure: stable.
        assert_eq!(
            sell.fingerprint(),
            SellMatrix::from_csr(&a, 4, 8).fingerprint()
        );
    }

    #[test]
    fn empty_matrix() {
        let a = CooMatrix::new(0, 5).to_csr();
        let sell = SellMatrix::from_csr(&a, 8, 8);
        assert_eq!(sell.stored_entries(), 0);
        let x = vec![1.0; 5];
        let mut y = vec![];
        sell.spmv(&x, &mut y);
    }
}
