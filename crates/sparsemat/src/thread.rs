//! Worker-thread helpers shared across the workspace.

/// Unwraps a [`std::thread::JoinHandle::join`] result, propagating the
/// worker's own panic message instead of the opaque `Any` payload.
///
/// `handle.join().unwrap()` re-panics with `called `Result::unwrap()` on
/// an `Err` value: Any { .. }`, burying what the worker actually said.
/// This downcasts the payload (panics carry a `&str` or `String` in
/// practice) and re-panics as `"{what} panicked: {message}"`, so a
/// multi-threaded failure is diagnosable from the top-level report.
///
/// # Panics
///
/// Panics if `result` is the `Err` (worker-panicked) variant.
pub fn join_propagating<T>(result: std::thread::Result<T>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("{what} panicked: {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_value_passes_through() {
        let h = std::thread::spawn(|| 42);
        assert_eq!(join_propagating(h.join(), "worker"), 42);
    }

    #[test]
    fn str_payload_is_propagated() {
        let joined = std::thread::spawn(|| panic!("bad slot index")).join();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join_propagating(joined, "cursor worker")
        }))
        .expect_err("must re-panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "cursor worker panicked: bad slot index");
    }

    #[test]
    fn formatted_payload_is_propagated() {
        let joined = std::thread::spawn(|| panic!("shard {} out of range", 7)).join();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join_propagating(joined, "shard worker")
        }))
        .expect_err("must re-panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "shard worker panicked: shard 7 out of range");
    }
}
