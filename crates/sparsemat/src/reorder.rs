//! (Reverse) Cuthill–McKee bandwidth-reducing reordering.
//!
//! The paper's §4.2 attributes part of the performance gap to Alappat et
//! al.'s use of RCM reordering, which improves the temporal locality of the
//! `x`-vector accesses by clustering nonzeros near the diagonal. The
//! Table 1 comparator applies this reordering; it is also exposed publicly
//! as a locality optimisation users can combine with the sector cache.

use crate::csr::CsrMatrix;

/// Computes the Cuthill–McKee ordering of a square matrix's symmetrised
/// adjacency structure.
///
/// Returns a permutation `perm` with `perm[new] = old`. Vertices are
/// visited breadth-first from a pseudo-peripheral vertex of each connected
/// component, neighbours in order of increasing degree.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn cuthill_mckee(matrix: &CsrMatrix) -> Vec<usize> {
    assert_eq!(
        matrix.num_rows(),
        matrix.num_cols(),
        "Cuthill-McKee requires a square matrix"
    );
    let n = matrix.num_rows();
    let adj = symmetrized_adjacency(matrix);
    let degree: Vec<usize> = (0..n).map(|v| adj.row_nnz(v)).collect();

    let mut perm = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut neighbour_buf: Vec<usize> = Vec::new();

    // Process each connected component.
    for start_candidate in 0..n {
        if visited[start_candidate] {
            continue;
        }
        let start = pseudo_peripheral(&adj, &degree, start_candidate);
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            perm.push(v);
            neighbour_buf.clear();
            for (u, _) in adj.row(v) {
                if !visited[u] {
                    visited[u] = true;
                    neighbour_buf.push(u);
                }
            }
            neighbour_buf.sort_unstable_by_key(|&u| degree[u]);
            queue.extend(neighbour_buf.iter().copied());
        }
    }
    debug_assert_eq!(perm.len(), n);
    perm
}

/// Computes the *Reverse* Cuthill–McKee ordering (`perm[new] = old`).
pub fn reverse_cuthill_mckee(matrix: &CsrMatrix) -> Vec<usize> {
    let mut perm = cuthill_mckee(matrix);
    perm.reverse();
    perm
}

/// Applies RCM to a square matrix, returning the reordered matrix.
pub fn rcm_reorder(matrix: &CsrMatrix) -> CsrMatrix {
    matrix.permute_symmetric(&reverse_cuthill_mckee(matrix))
}

/// Builds the pattern of `A + Aᵀ` (values unused, set to 1.0), without
/// diagonal entries — the undirected adjacency used for BFS orderings.
fn symmetrized_adjacency(matrix: &CsrMatrix) -> CsrMatrix {
    let n = matrix.num_rows();
    let mut counts = vec![0i64; n + 1];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(matrix.nnz() * 2);
    for r in 0..n {
        for (c, _) in matrix.row(r) {
            if r != c {
                edges.push((r, c));
                edges.push((c, r));
            }
        }
    }
    for &(r, _) in &edges {
        counts[r + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let rowptr_raw = counts.clone();
    let mut next = counts;
    let mut cols = vec![0u32; edges.len()];
    for &(r, c) in &edges {
        cols[next[r] as usize] = c as u32;
        next[r] += 1;
    }
    // Sort and dedup each row.
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0i64);
    let mut out_cols = Vec::with_capacity(edges.len());
    for r in 0..n {
        let (b, e) = (rowptr_raw[r] as usize, rowptr_raw[r + 1] as usize);
        let mut row: Vec<u32> = cols[b..e].to_vec();
        row.sort_unstable();
        row.dedup();
        out_cols.extend_from_slice(&row);
        rowptr.push(out_cols.len() as i64);
    }
    let nnz = out_cols.len();
    CsrMatrix::from_parts(n, n, rowptr, out_cols, vec![1.0; nnz])
}

/// Finds a pseudo-peripheral vertex of the component containing `start`
/// using the standard George–Liu iteration: repeated BFS, moving to a
/// minimum-degree vertex in the last (deepest) level until the eccentricity
/// stops growing.
fn pseudo_peripheral(adj: &CsrMatrix, degree: &[usize], start: usize) -> usize {
    let n = adj.num_rows();
    let mut current = start;
    let mut level = vec![usize::MAX; n];
    let mut last_ecc = 0usize;
    loop {
        // BFS from `current`.
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[current] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(current);
        let mut deepest = current;
        let mut ecc = 0usize;
        while let Some(v) = queue.pop_front() {
            for (u, _) in adj.row(v) {
                if level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    if level[u] > ecc || (level[u] == ecc && degree[u] < degree[deepest]) {
                        ecc = level[u];
                        deepest = u;
                    }
                    queue.push_back(u);
                }
            }
        }
        if ecc <= last_ecc {
            return current;
        }
        last_ecc = ecc;
        current = deepest;
    }
}

/// Bandwidth of a square matrix after applying permutation `perm`
/// (`perm[new] = old`), without materialising the permuted matrix.
pub fn permuted_bandwidth(matrix: &CsrMatrix, perm: &[usize]) -> usize {
    let n = matrix.num_rows();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut bw = 0usize;
    for r in 0..n {
        for (c, _) in matrix.row(r) {
            bw = bw.max(inv[r].abs_diff(inv[c]));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::stats::MatrixStats;

    /// Path graph 0-1-2-...-(n-1) but with shuffled labels.
    fn shuffled_path(n: usize, seed: u64) -> CsrMatrix {
        let mut labels: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            labels.swap(i, j);
        }
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            coo.push(v, v, 2.0);
        }
        for w in labels.windows(2) {
            coo.push_symmetric(w[0], w[1], -1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn perm_is_a_permutation() {
        let m = shuffled_path(50, 3);
        let perm = reverse_cuthill_mckee(&m);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_recovers_path_bandwidth() {
        // A path graph has optimal bandwidth 1; RCM must find it.
        let m = shuffled_path(64, 11);
        let before = MatrixStats::compute(&m).bandwidth;
        let reordered = rcm_reorder(&m);
        let after = MatrixStats::compute(&reordered).bandwidth;
        assert!(after <= before);
        assert_eq!(after, 1, "RCM should recover bandwidth 1 on a path");
    }

    #[test]
    fn rcm_reduces_bandwidth_on_random_banded() {
        let m = shuffled_path(200, 12345);
        let perm = reverse_cuthill_mckee(&m);
        assert!(permuted_bandwidth(&m, &perm) < MatrixStats::compute(&m).bandwidth);
    }

    #[test]
    fn handles_disconnected_components() {
        // Two disjoint edges plus an isolated vertex.
        let mut coo = CooMatrix::new(5, 5);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(2, 3, 1.0);
        for v in 0..5 {
            coo.push(v, v, 1.0);
        }
        let m = coo.to_csr();
        let perm = reverse_cuthill_mckee(&m);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_preserves_spmv_result_up_to_permutation() {
        let m = shuffled_path(30, 77);
        let perm = reverse_cuthill_mckee(&m);
        let pm = m.permute_symmetric(&perm);
        let x: Vec<f64> = (0..30).map(|i| i as f64 + 1.0).collect();
        // Permute x accordingly: new index i corresponds to old perm[i].
        let px: Vec<f64> = perm.iter().map(|&old| x[old]).collect();
        let mut y = vec![0.0; 30];
        let mut py = vec![0.0; 30];
        crate::spmv::spmv_seq(&m, &x, &mut y);
        crate::spmv::spmv_seq(&pm, &px, &mut py);
        for (new, &old) in perm.iter().enumerate() {
            assert!((py[new] - y[old]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix_ok() {
        let m = CooMatrix::new(0, 0).to_csr();
        assert!(reverse_cuthill_mckee(&m).is_empty());
    }
}
