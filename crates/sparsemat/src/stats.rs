//! Per-matrix statistics used by the model and the evaluation.
//!
//! The paper's §4.5 filters matrices by the mean (`μ_K`) and coefficient of
//! variation (`CV_K = σ_K / μ_K`) of the nonzeros-per-row distribution:
//! method (B)'s accuracy degrades for matrices with low `μ_K` and high
//! `CV_K`. [`MatrixStats`] computes these together with structural
//! measures (bandwidth, diagonal fraction) used by the corpus generators'
//! self-checks.

use crate::csr::CsrMatrix;

/// Summary statistics of a sparse matrix's nonzero structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixStats {
    /// Number of rows (`M`).
    pub num_rows: usize,
    /// Number of columns (`N`).
    pub num_cols: usize,
    /// Number of nonzeros (`K`).
    pub nnz: usize,
    /// Mean nonzeros per row, the paper's `μ_K`.
    pub row_nnz_mean: f64,
    /// Standard deviation of nonzeros per row, the paper's `σ_K`
    /// (population standard deviation).
    pub row_nnz_std: f64,
    /// Coefficient of variation `CV_K = σ_K / μ_K` (0 when `μ_K = 0`).
    pub row_nnz_cv: f64,
    /// Maximum nonzeros in any row.
    pub row_nnz_max: usize,
    /// Number of rows with no nonzeros.
    pub empty_rows: usize,
    /// Matrix bandwidth: `max |r - c|` over stored entries (0 if empty).
    pub bandwidth: usize,
    /// Fraction of stored entries on the main diagonal.
    pub diag_fraction: f64,
}

impl MatrixStats {
    /// Computes statistics for `matrix` in a single pass over its pattern.
    pub fn compute(matrix: &CsrMatrix) -> Self {
        let m = matrix.num_rows();
        let k = matrix.nnz();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut row_nnz_max = 0usize;
        let mut empty_rows = 0usize;
        let mut bandwidth = 0usize;
        let mut diag = 0usize;
        for r in 0..m {
            let nnz_r = matrix.row_nnz(r);
            sum += nnz_r as f64;
            sum_sq += (nnz_r * nnz_r) as f64;
            row_nnz_max = row_nnz_max.max(nnz_r);
            if nnz_r == 0 {
                empty_rows += 1;
            }
            for i in matrix.row_range(r) {
                let c = matrix.colidx()[i] as usize;
                bandwidth = bandwidth.max(r.abs_diff(c));
                if c == r {
                    diag += 1;
                }
            }
        }
        let mean = if m > 0 { sum / m as f64 } else { 0.0 };
        let var = if m > 0 {
            (sum_sq / m as f64 - mean * mean).max(0.0)
        } else {
            0.0
        };
        let std = var.sqrt();
        MatrixStats {
            num_rows: m,
            num_cols: matrix.num_cols(),
            nnz: k,
            row_nnz_mean: mean,
            row_nnz_std: std,
            row_nnz_cv: if mean > 0.0 { std / mean } else { 0.0 },
            row_nnz_max,
            empty_rows,
            bandwidth,
            diag_fraction: if k > 0 { diag as f64 / k as f64 } else { 0.0 },
        }
    }

    /// The paper's §4.5.2 "well-behaved" predicate for method (B):
    /// `μ_K ≥ 8` and `CV_K ≤ 1`.
    pub fn is_method_b_friendly(&self) -> bool {
        self.row_nnz_mean >= 8.0 && self.row_nnz_cv <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn identity_stats() {
        let s = MatrixStats::compute(&CsrMatrix::identity(10));
        assert_eq!(s.nnz, 10);
        assert_eq!(s.row_nnz_mean, 1.0);
        assert_eq!(s.row_nnz_std, 0.0);
        assert_eq!(s.row_nnz_cv, 0.0);
        assert_eq!(s.row_nnz_max, 1);
        assert_eq!(s.empty_rows, 0);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.diag_fraction, 1.0);
    }

    #[test]
    fn skewed_stats() {
        // Rows with 4, 0, 2 nonzeros: mean = 2, var = (16+0+4)/3 - 4 = 8/3.
        let mut coo = CooMatrix::new(3, 8);
        for c in 0..4 {
            coo.push(0, c, 1.0);
        }
        coo.push(2, 2, 1.0);
        coo.push(2, 7, 1.0);
        let s = MatrixStats::compute(&coo.to_csr());
        assert_eq!(s.row_nnz_mean, 2.0);
        assert!((s.row_nnz_std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.empty_rows, 1);
        assert_eq!(s.row_nnz_max, 4);
        assert_eq!(s.bandwidth, 5); // |2 - 7|
                                    // Diagonal entries: (0,0) and (2,2) out of 6 stored.
        assert!((s.diag_fraction - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn method_b_friendly_predicate() {
        // Dense-ish rows, uniform: friendly.
        let mut coo = CooMatrix::new(4, 16);
        for r in 0..4 {
            for c in 0..10 {
                coo.push(r, c, 1.0);
            }
        }
        assert!(MatrixStats::compute(&coo.to_csr()).is_method_b_friendly());
        // Sparse rows: unfriendly (mean < 8).
        assert!(!MatrixStats::compute(&CsrMatrix::identity(4)).is_method_b_friendly());
    }

    #[test]
    fn empty_matrix_stats_are_finite() {
        let s = MatrixStats::compute(&CooMatrix::new(0, 0).to_csr());
        assert_eq!(s.nnz, 0);
        assert_eq!(s.row_nnz_mean, 0.0);
        assert_eq!(s.row_nnz_cv, 0.0);
        assert_eq!(s.diag_fraction, 0.0);
    }
}
