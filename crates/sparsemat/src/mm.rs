//! Matrix Market (`.mtx`) I/O.
//!
//! The paper evaluates on 490 SuiteSparse matrices, which are distributed
//! in Matrix Market format. This module implements the coordinate subset of
//! the format (the one SuiteSparse uses for sparse matrices): `real`,
//! `integer` and `pattern` fields with `general` or `symmetric` symmetry,
//! so real collections can be dropped into the experiment harness when
//! available. Writing is supported for round-tripping and for exporting
//! generated corpus matrices.

use std::collections::HashSet;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid or unsupported file content; the string names
    /// the offending line or construct.
    Parse(String),
    /// An entry `(row, col)` (1-based) outside the declared dimensions.
    OutOfBounds {
        /// 1-based row index as written in the file.
        row: usize,
        /// 1-based column index as written in the file.
        col: usize,
        /// Declared row count.
        num_rows: usize,
        /// Declared column count.
        num_cols: usize,
    },
    /// The same coordinate appeared twice (directly, or via the symmetric
    /// mirror of another entry). Silently summing duplicates — what COO
    /// assembly would do — corrupts the nonzero count every downstream
    /// byte-accounting formula depends on, so the reader rejects them.
    Duplicate {
        /// 1-based row index.
        row: usize,
        /// 1-based column index.
        col: usize,
    },
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
            MmError::OutOfBounds {
                row,
                col,
                num_rows,
                num_cols,
            } => write!(
                f,
                "Matrix Market parse error: entry ({row}, {col}) out of bounds \
                 for {num_rows}x{num_cols} (1-based)"
            ),
            MmError::Duplicate { row, col } => write!(
                f,
                "Matrix Market parse error: duplicate entry ({row}, {col})"
            ),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Field type of a Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry of a Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market coordinate file into COO form.
///
/// Supports `matrix coordinate {real, integer, pattern}` with
/// `{general, symmetric, skew-symmetric}` symmetry. Pattern entries get
/// value `1.0`. Symmetric entries are mirrored. Complex and array (dense)
/// files are rejected with [`MmError::Parse`].
///
/// Malformed coordinate data is rejected with a typed error instead of
/// being silently absorbed into the CSR: out-of-bounds entries
/// ([`MmError::OutOfBounds`]), repeated coordinates
/// ([`MmError::Duplicate`]), upper-triangle entries in symmetric or
/// skew-symmetric files, diagonal entries in skew-symmetric files, and
/// trailing tokens on entry lines.
pub fn read_coo<R: BufRead>(reader: R) -> Result<CooMatrix, MmError> {
    let mut lines = reader.lines();

    // Header line.
    let header = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty file".into()))??;
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() != 5 || tokens[0] != "%%matrixmarket" {
        return Err(MmError::Parse(format!("bad header line: {header}")));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(MmError::Parse(format!(
            "only 'matrix coordinate' files are supported, got '{} {}'",
            tokens[1], tokens[2]
        )));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MmError::Parse(format!("unsupported field type '{other}'"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(MmError::Parse(format!("unsupported symmetry '{other}'"))),
    };
    if field == Field::Pattern && symmetry == Symmetry::SkewSymmetric {
        // The format specification has no skew-symmetric pattern matrices
        // (the mirrored entries would need value -1); mirroring them as if
        // they were symmetric would silently fabricate values.
        return Err(MmError::Parse(
            "'pattern skew-symmetric' is not a valid Matrix Market banner".into(),
        ));
    }

    // Size line: first non-comment, non-empty line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| MmError::Parse("missing size line".into()))?;
    let mut it = size_line.split_whitespace();
    let parse_usize = |tok: Option<&str>, what: &str| -> Result<usize, MmError> {
        tok.ok_or_else(|| MmError::Parse(format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|_| MmError::Parse(format!("invalid {what} in '{size_line}'")))
    };
    let num_rows = parse_usize(it.next(), "row count")?;
    let num_cols = parse_usize(it.next(), "column count")?;
    let declared_nnz = parse_usize(it.next(), "nonzero count")?;

    let mut coo = CooMatrix::with_capacity(num_rows, num_cols, declared_nnz);
    let mut seen = 0usize;
    let mut occupied: HashSet<(usize, usize)> = HashSet::with_capacity(declared_nnz);
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| MmError::Parse(format!("bad row index in '{trimmed}'")))?;
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| MmError::Parse(format!("bad column index in '{trimmed}'")))?;
        if r == 0 || c == 0 || r > num_rows || c > num_cols {
            return Err(MmError::OutOfBounds {
                row: r,
                col: c,
                num_rows,
                num_cols,
            });
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| MmError::Parse(format!("bad value in '{trimmed}'")))?,
        };
        if it.next().is_some() {
            return Err(MmError::Parse(format!(
                "trailing tokens after entry '{trimmed}'"
            )));
        }
        if symmetry != Symmetry::General {
            // Symmetric and skew-symmetric files store the lower triangle
            // only; an upper-triangle entry would collide with the mirror
            // of its transpose and double-count the nonzero.
            if r < c {
                return Err(MmError::Parse(format!(
                    "entry ({r}, {c}) above the diagonal in a {} file",
                    if symmetry == Symmetry::Symmetric {
                        "symmetric"
                    } else {
                        "skew-symmetric"
                    }
                )));
            }
            if symmetry == Symmetry::SkewSymmetric && r == c {
                return Err(MmError::Parse(format!(
                    "diagonal entry ({r}, {c}) in a skew-symmetric file"
                )));
            }
        }
        if !occupied.insert((r, c)) {
            return Err(MmError::Duplicate { row: r, col: c });
        }
        let (r, c) = (r - 1, c - 1);
        match symmetry {
            Symmetry::General => coo.push(r, c, v),
            Symmetry::Symmetric => coo.push_symmetric(r, c, v),
            Symmetry::SkewSymmetric => {
                coo.push(r, c, v);
                coo.push(c, r, -v);
            }
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(MmError::Parse(format!(
            "file declares {declared_nnz} entries but contains {seen}"
        )));
    }
    Ok(coo)
}

/// Reads a Matrix Market file from `path` into CSR form.
pub fn read_csr_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix, MmError> {
    let file = std::fs::File::open(path)?;
    Ok(read_coo(io::BufReader::new(file))?.to_csr())
}

/// Writes `matrix` as a `matrix coordinate real general` Matrix Market file.
pub fn write_csr<W: Write>(writer: &mut W, matrix: &CsrMatrix) -> io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.num_rows(),
        matrix.num_cols(),
        matrix.nnz()
    )?;
    for r in 0..matrix.num_rows() {
        for (c, v) in matrix.row(r) {
            writeln!(writer, "{} {} {v:e}", r + 1, c + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 2.5\n\
                    2 3 -1.0\n\
                    3 1 4\n";
        let csr = read_coo(Cursor::new(text)).unwrap().to_csr();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), Some(2.5));
        assert_eq!(csr.get(1, 2), Some(-1.0));
        assert_eq!(csr.get(2, 0), Some(4.0));
    }

    #[test]
    fn reads_symmetric_and_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let csr = read_coo(Cursor::new(text)).unwrap().to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 1), Some(5.0));
        assert_eq!(csr.get(1, 0), Some(5.0));
    }

    #[test]
    fn reads_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let csr = read_coo(Cursor::new(text)).unwrap().to_csr();
        assert_eq!(csr.get(1, 0), Some(3.0));
        assert_eq!(csr.get(0, 1), Some(-3.0));
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 2\n\
                    2 3\n";
        let csr = read_coo(Cursor::new(text)).unwrap().to_csr();
        assert_eq!(csr.get(0, 1), Some(1.0));
        assert_eq!(csr.get(1, 2), Some(1.0));
    }

    #[test]
    fn rejects_complex() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("unsupported field"));
    }

    #[test]
    fn rejects_dense_array() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("coordinate"));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(matches!(
            err,
            MmError::OutOfBounds {
                row: 3,
                col: 1,
                num_rows: 2,
                num_cols: 2
            }
        ));
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn rejects_duplicate_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n1 2 1.0\n1 2 4.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MmError::Duplicate { row: 1, col: 2 }));
        assert!(err.to_string().contains("duplicate entry (1, 2)"));
    }

    #[test]
    fn rejects_duplicate_pattern_entry() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    3 3 2\n2 1\n2 1\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MmError::Duplicate { row: 2, col: 1 }));
    }

    #[test]
    fn rejects_upper_triangle_in_symmetric() {
        // (1, 2) in a symmetric file collides with the mirror of (2, 1);
        // the old reader mirrored both and produced nnz = 4, not 3.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n2 1 5.0\n1 2 5.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("above the diagonal"), "got: {err}");
    }

    #[test]
    fn rejects_upper_triangle_in_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    3 3 1\n1 3 2.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("above the diagonal"));
    }

    #[test]
    fn rejects_skew_symmetric_diagonal() {
        // A skew-symmetric matrix has a zero diagonal by definition; a
        // stored diagonal entry is malformed, and the old reader kept it
        // without the (impossible) mirror.
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n1 1 3.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("diagonal entry (1, 1)"));
    }

    #[test]
    fn rejects_pattern_skew_symmetric_banner() {
        let text = "%%MatrixMarket matrix coordinate pattern skew-symmetric\n\
                    2 2 1\n2 1\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("pattern skew-symmetric"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1\n1 1 1.0 9.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("trailing tokens"));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_coo(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("declares 2 entries"));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 3, 1.25);
        coo.push(2, 0, -7.5);
        coo.push(1, 1, 0.003);
        let original = coo.to_csr();
        let mut buf = Vec::new();
        write_csr(&mut buf, &original).unwrap();
        let reread = read_coo(Cursor::new(buf)).unwrap().to_csr();
        assert_eq!(original, reread);
    }
}
