//! CSR sparse matrix-vector multiplication kernels, `y ← y + A·x`.
//!
//! Three kernels are provided:
//!
//! * [`spmv_seq`] — the paper's Listing 1 inner loops, sequential;
//! * [`spmv_parallel`] — the paper's Listing 1 with the outer row loop
//!   parallelised over a [`RowPartition`] using scoped threads (the Rust
//!   analogue of `#pragma omp for` with a static schedule);
//! * [`spmv_merge`] — merge-based CSR SpMV (Merrill & Garland), the
//!   load-balance-robust baseline the paper cites for matrices whose
//!   nonzeros-per-row counts vary greatly.
//!
//! All kernels accumulate into `y` (they do not zero it first), matching
//! the `y ← y + A·x` operation the paper models.

use crate::csr::CsrMatrix;
use crate::partition::RowPartition;

/// Sequential CSR SpMV: `y ← y + A·x` (the paper's Listing 1).
///
/// # Panics
///
/// Panics if `x.len() != a.num_cols()` or `y.len() != a.num_rows()`.
pub fn spmv_seq(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.num_cols(), "x length must equal num_cols");
    assert_eq!(y.len(), a.num_rows(), "y length must equal num_rows");
    spmv_rows(a, x, y, 0..a.num_rows());
}

/// SpMV restricted to the rows in `rows`; `y` is indexed absolutely.
///
/// This is the per-thread body of the parallel kernel and is also used by
/// the trace generator to replicate each thread's access pattern.
#[inline]
pub fn spmv_rows(a: &CsrMatrix, x: &[f64], y: &mut [f64], rows: std::ops::Range<usize>) {
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    for r in rows {
        let mut acc = y[r];
        for i in rowptr[r] as usize..rowptr[r + 1] as usize {
            acc += values[i] * x[colidx[i] as usize];
        }
        y[r] = acc;
    }
}

/// Parallel CSR SpMV over a row partition: `y ← y + A·x`.
///
/// Each partition block is processed by its own scoped thread; because the
/// blocks are disjoint contiguous row ranges, each thread owns a disjoint
/// slice of `y` and no synchronisation is needed (the same data-race-free
/// decomposition the OpenMP worksharing loop produces).
///
/// # Panics
///
/// Panics if vector lengths do not match the matrix dimensions or the
/// partition does not cover exactly `a.num_rows()` rows.
pub fn spmv_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64], partition: &RowPartition) {
    assert_eq!(x.len(), a.num_cols(), "x length must equal num_cols");
    assert_eq!(y.len(), a.num_rows(), "y length must equal num_rows");
    assert_eq!(
        *partition.bounds().last().unwrap(),
        a.num_rows(),
        "partition must cover all rows"
    );

    // Split y into per-block slices so each thread gets exclusive access.
    let mut slices: Vec<&mut [f64]> = Vec::with_capacity(partition.num_parts());
    let mut rest = y;
    let mut prev = 0;
    for range in partition.iter() {
        let (head, tail) = rest.split_at_mut(range.end - prev);
        slices.push(head);
        rest = tail;
        prev = range.end;
    }

    std::thread::scope(|scope| {
        for (range, y_block) in partition.iter().zip(slices) {
            if range.is_empty() {
                continue;
            }
            scope.spawn(move || {
                let rowptr = a.rowptr();
                let colidx = a.colidx();
                let values = a.values();
                let base = range.start;
                for r in range {
                    let mut acc = y_block[r - base];
                    for i in rowptr[r] as usize..rowptr[r + 1] as usize {
                        acc += values[i] * x[colidx[i] as usize];
                    }
                    y_block[r - base] = acc;
                }
            });
        }
    });
}

/// Merge-based CSR SpMV (Merrill & Garland, PPoPP 2016): `y ← y + A·x`.
///
/// The merge formulation treats SpMV as a 2-D merge of the `rowptr` array
/// with the nonzero indices; splitting the merge path into equal-length
/// diagonals gives every thread the same amount of work regardless of the
/// row-length distribution. Rows split across threads are combined with a
/// sequential fix-up of per-thread carry-out partial sums.
pub fn spmv_merge(a: &CsrMatrix, x: &[f64], y: &mut [f64], num_threads: usize) {
    assert_eq!(x.len(), a.num_cols(), "x length must equal num_cols");
    assert_eq!(y.len(), a.num_rows(), "y length must equal num_rows");
    assert!(num_threads > 0, "need at least one thread");

    let m = a.num_rows();
    let k = a.nnz();
    let total_work = m + k;
    if total_work == 0 {
        return;
    }

    // Find the merge-path split point for a given diagonal: the number of
    // rows consumed (i) such that i + j = diagonal and rowptr[i] >= j is
    // first violated. Standard binary search on the merge path.
    let rowptr = a.rowptr();
    let split = |diagonal: usize| -> (usize, usize) {
        let mut lo = diagonal.saturating_sub(k);
        let mut hi = diagonal.min(m);
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Merge condition: row-end markers (rowptr[mid+1]) vs nnz index.
            if (rowptr[mid + 1] as usize) < diagonal - mid {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo, diagonal - lo)
    };

    let colidx = a.colidx();
    let values = a.values();

    // Each thread walks its merge-path segment and produces (row, partial)
    // updates; updates are applied serially after the join so rows split
    // across segment boundaries combine correctly and no unsafe aliasing of
    // `y` is needed.
    let chunk = total_work.div_ceil(num_threads);
    let mut updates: Vec<Vec<(usize, f64)>> = Vec::with_capacity(num_threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for t in 0..num_threads {
            let d0 = (t * chunk).min(total_work);
            let d1 = ((t + 1) * chunk).min(total_work);
            handles.push(scope.spawn(move || {
                let (mut row, mut nz) = split(d0);
                let (row_end, nz_end) = split(d1);
                let mut local: Vec<(usize, f64)> = Vec::new();
                // Rows that end inside this segment (the first may have been
                // started by the previous segment; its prefix is that
                // segment's carry-out).
                while row < row_end {
                    let mut sum = 0.0;
                    while nz < rowptr[row + 1] as usize {
                        sum += values[nz] * x[colidx[nz] as usize];
                        nz += 1;
                    }
                    local.push((row, sum));
                    row += 1;
                }
                // Carry-out: the partial prefix of the row that continues
                // into the next segment.
                if row < m && nz < nz_end {
                    let mut sum = 0.0;
                    while nz < nz_end {
                        sum += values[nz] * x[colidx[nz] as usize];
                        nz += 1;
                    }
                    local.push((row, sum));
                }
                local
            }));
        }
        for h in handles {
            updates.push(crate::thread::join_propagating(
                h.join(),
                "merge SpMV worker",
            ));
        }
    });

    for local in &updates {
        for &(r, v) in local {
            y[r] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn dense_ref(a: &CsrMatrix, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        for (r, yr) in y.iter_mut().enumerate() {
            for (c, v) in a.row(r) {
                *yr += v * x[c];
            }
        }
        y
    }

    fn random_matrix(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        // Deterministic LCG so the test needs no external crates here.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut coo = CooMatrix::new(rows, cols);
        for r in 0..rows {
            for _ in 0..nnz_per_row {
                let c = next() % cols;
                coo.push(r, c, ((next() % 1000) as f64) / 100.0 - 5.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn seq_matches_dense_reference() {
        let a = random_matrix(40, 30, 5, 42);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.25).collect();
        let y0: Vec<f64> = (0..40).map(|i| -(i as f64)).collect();
        let mut y = y0.clone();
        spmv_seq(&a, &x, &mut y);
        let expect = dense_ref(&a, &x, &y0);
        for (got, want) in y.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn seq_accumulates_into_y() {
        let a = CsrMatrix::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        spmv_seq(&a, &x, &mut y);
        assert_eq!(y, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_matrix(101, 67, 7, 7);
        let x: Vec<f64> = (0..67).map(|i| (i as f64).sin()).collect();
        let mut y_seq = vec![0.0; 101];
        let mut y_par = vec![0.0; 101];
        spmv_seq(&a, &x, &mut y_seq);
        for threads in [1, 2, 4, 13] {
            y_par.iter_mut().for_each(|v| *v = 0.0);
            let p = RowPartition::static_rows(a.num_rows(), threads);
            spmv_parallel(&a, &x, &mut y_par, &p);
            for (s, p) in y_seq.iter().zip(&y_par) {
                assert!((s - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_with_balanced_partition() {
        let a = random_matrix(64, 64, 3, 99);
        let x = vec![1.5; 64];
        let mut y_seq = vec![0.0; 64];
        let mut y_par = vec![0.0; 64];
        spmv_seq(&a, &x, &mut y_seq);
        let p = RowPartition::balanced_nnz(&a, 6);
        spmv_parallel(&a, &x, &mut y_par, &p);
        for (s, p) in y_seq.iter().zip(&y_par) {
            assert!((s - p).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_matches_sequential_uniform() {
        let a = random_matrix(57, 43, 4, 3);
        let x: Vec<f64> = (0..43).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y_seq = vec![0.0; 57];
        spmv_seq(&a, &x, &mut y_seq);
        for threads in [1, 2, 5, 16] {
            let mut y = vec![0.0; 57];
            spmv_merge(&a, &x, &mut y, threads);
            for (s, g) in y_seq.iter().zip(&y) {
                assert!((s - g).abs() < 1e-10, "threads={threads}: {s} vs {g}");
            }
        }
    }

    #[test]
    fn merge_matches_sequential_skewed() {
        // One massive row followed by tiny rows: the case merge-based SpMV
        // exists for.
        let mut coo = CooMatrix::new(20, 256);
        for c in 0..256 {
            coo.push(0, c, 0.5);
        }
        for r in 1..20 {
            coo.push(r, r, 2.0);
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let mut y_seq = vec![0.0; 20];
        spmv_seq(&a, &x, &mut y_seq);
        for threads in [1, 2, 3, 8] {
            let mut y = vec![0.0; 20];
            spmv_merge(&a, &x, &mut y, threads);
            for (s, g) in y_seq.iter().zip(&y) {
                assert!((s - g).abs() < 1e-10, "threads={threads}: {s} vs {g}");
            }
        }
    }

    #[test]
    fn merge_handles_empty_rows() {
        let mut coo = CooMatrix::new(10, 10);
        coo.push(0, 0, 1.0);
        coo.push(9, 9, 2.0);
        let a = coo.to_csr();
        let x = vec![3.0; 10];
        let mut y_seq = vec![0.0; 10];
        spmv_seq(&a, &x, &mut y_seq);
        for threads in [1, 2, 4] {
            let mut y = vec![0.0; 10];
            spmv_merge(&a, &x, &mut y, threads);
            assert_eq!(y, y_seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_matrix_is_noop() {
        let a = CooMatrix::new(4, 4).to_csr();
        let x = vec![1.0; 4];
        let mut y = vec![2.0; 4];
        spmv_seq(&a, &x, &mut y);
        assert_eq!(y, vec![2.0; 4]);
        spmv_merge(&a, &x, &mut y, 3);
        assert_eq!(y, vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_rejected() {
        let a = CsrMatrix::identity(3);
        let x = vec![0.0; 2];
        let mut y = vec![0.0; 3];
        spmv_seq(&a, &x, &mut y);
    }
}
