//! Compressed Sparse Row (CSR) matrix format.
//!
//! CSR is the format studied by the paper (Listing 1). The index/value
//! types deliberately match the paper's byte accounting: 8-byte `f64`
//! values (`a`), 4-byte `u32` column indices (`colidx`) and 8-byte `i64`
//! row pointers (`rowptr`). The locality model's closed-form traffic terms
//! (`⌈8K/L⌉ + ⌈4K/L⌉ + ⌈8(M+1)/L⌉ + ⌈8M/L⌉`) depend on these sizes.

use crate::coo::CooMatrix;
use crate::{COLIDX_BYTES, ROWPTR_BYTES, VALUE_BYTES, VECTOR_BYTES};

/// A sparse matrix in CSR format.
///
/// Invariants (validated by [`CsrMatrix::from_parts`]):
/// * `rowptr.len() == num_rows + 1`, `rowptr[0] == 0`,
///   `rowptr[num_rows] == nnz`, and `rowptr` is non-decreasing;
/// * `colidx.len() == values.len() == nnz`;
/// * every column index is `< num_cols`.
///
/// Column indices within a row are *not* required to be sorted (CSR from
/// arbitrary sources may be unsorted); [`CooMatrix::to_csr`] produces sorted
/// rows and [`CsrMatrix::has_sorted_rows`] reports the property.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    num_rows: usize,
    num_cols: usize,
    rowptr: Vec<i64>,
    colidx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Panics
    ///
    /// Panics if any CSR invariant is violated.
    pub fn from_parts(
        num_rows: usize,
        num_cols: usize,
        rowptr: Vec<i64>,
        colidx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            rowptr.len(),
            num_rows + 1,
            "rowptr length must be num_rows + 1"
        );
        assert_eq!(
            colidx.len(),
            values.len(),
            "colidx and values must have equal length"
        );
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(
            rowptr[num_rows] as usize,
            colidx.len(),
            "rowptr must end at nnz"
        );
        for r in 0..num_rows {
            assert!(
                rowptr[r] <= rowptr[r + 1],
                "rowptr must be non-decreasing at row {r}"
            );
        }
        assert!(
            u32::try_from(num_cols).is_ok(),
            "number of columns {num_cols} exceeds u32 range"
        );
        for &c in &colidx {
            assert!(
                (c as usize) < num_cols,
                "column index {c} out of bounds ({num_cols})"
            );
        }
        CsrMatrix {
            num_rows,
            num_cols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Builds an `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let rowptr = (0..=n as i64).collect();
        let colidx = (0..n as u32).collect();
        let values = vec![1.0; n];
        Self::from_parts(n, n, rowptr, colidx, values)
    }

    /// Number of rows (the paper's `M`).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (the paper's `N`).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored nonzeros (the paper's `K`).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`rowptr`), `num_rows + 1` entries.
    pub fn rowptr(&self) -> &[i64] {
        &self.rowptr
    }

    /// The column index array (`colidx`), `nnz` entries.
    pub fn colidx(&self) -> &[u32] {
        &self.colidx
    }

    /// The nonzero values array (`a`), `nnz` entries.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the nonzero values (pattern is immutable).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The half-open nonzero index range of row `r`.
    #[inline]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.rowptr[r] as usize..self.rowptr[r + 1] as usize
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.rowptr[r + 1] - self.rowptr[r]) as usize
    }

    /// Iterates over `(colidx, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_range(r);
        self.colidx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Looks up the entry at `(row, col)`, or `None` if not stored.
    ///
    /// Linear scan over the row; intended for tests and small matrices.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        self.row(row).find(|&(c, _)| c == col).map(|(_, v)| v)
    }

    /// Returns `true` if every row has strictly increasing column indices.
    pub fn has_sorted_rows(&self) -> bool {
        (0..self.num_rows).all(|r| {
            let range = self.row_range(r);
            self.colidx[range].windows(2).all(|w| w[0] < w[1])
        })
    }

    /// Converts back to COO (entries in row-major order).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.num_rows, self.num_cols, self.nnz());
        for r in 0..self.num_rows {
            for (c, v) in self.row(r) {
                coo.push(r, c, v);
            }
        }
        coo
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0i64; self.num_cols + 1];
        for &c in &self.colidx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.num_cols {
            counts[i + 1] += counts[i];
        }
        let rowptr = counts.clone();
        let mut next = counts;
        let mut colidx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.num_rows {
            for i in self.row_range(r) {
                let c = self.colidx[i] as usize;
                let dst = next[c] as usize;
                colidx[dst] = r as u32;
                values[dst] = self.values[i];
                next[c] += 1;
            }
        }
        CsrMatrix::from_parts(self.num_cols, self.num_rows, rowptr, colidx, values)
    }

    /// Applies a symmetric permutation `perm` (new index -> old index) to a
    /// square matrix, returning `P A Pᵀ`.
    ///
    /// Used by RCM reordering. `perm[i] = j` means new row/column `i` is old
    /// row/column `j`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `perm` is not a permutation of
    /// `0..num_rows`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.num_rows, self.num_cols,
            "symmetric permutation needs a square matrix"
        );
        assert_eq!(perm.len(), self.num_rows, "permutation length mismatch");
        let mut inv = vec![usize::MAX; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < perm.len(), "permutation entry out of range");
            assert!(
                inv[old] == usize::MAX,
                "permutation has duplicate entry {old}"
            );
            inv[old] = new;
        }

        let mut rowptr = Vec::with_capacity(self.num_rows + 1);
        rowptr.push(0i64);
        let mut colidx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for &old_r in perm.iter().take(self.num_rows) {
            scratch.clear();
            for (c, v) in self.row(old_r) {
                scratch.push((inv[c] as u32, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                colidx.push(c);
                values.push(v);
            }
            rowptr.push(colidx.len() as i64);
        }
        CsrMatrix::from_parts(self.num_rows, self.num_cols, rowptr, colidx, values)
    }

    /// Total bytes of the CSR data structures (`a` + `colidx` + `rowptr`),
    /// the paper's "matrix data".
    pub fn matrix_bytes(&self) -> usize {
        self.nnz() * (VALUE_BYTES + COLIDX_BYTES) + (self.num_rows + 1) * ROWPTR_BYTES
    }

    /// Total bytes of the SpMV working set: matrix data plus the `x`
    /// (`num_cols` elements) and `y` (`num_rows` elements) vectors.
    pub fn working_set_bytes(&self) -> usize {
        self.matrix_bytes() + (self.num_rows + self.num_cols) * VECTOR_BYTES
    }

    /// A stable 64-bit fingerprint of the *sparsity structure*: dimensions,
    /// `rowptr`, and `colidx`. Numerical values are deliberately excluded —
    /// the locality model depends only on the access pattern, so two
    /// matrices with equal structure but different values share reuse
    /// profiles (and may share a memoized prediction).
    ///
    /// The hash is FNV-1a over a fixed little-endian serialization, so it
    /// is identical across runs, platforms, and processes — safe to use as
    /// a persistent cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv::new();
        h.mix_u64(self.num_rows as u64);
        h.mix_u64(self.num_cols as u64);
        for &p in &self.rowptr {
            h.mix(&p.to_le_bytes());
        }
        for &c in &self.colidx {
            h.mix(&c.to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // The 4x4, 7-nonzero example of the paper's Fig. 1:
        // row 0: cols 1,2 ; row 1: col 0 ; row 2: cols 2,3 ; row 3: cols 1,3
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
    }

    #[test]
    fn fig1_example_accessors() {
        let a = example();
        assert_eq!(a.num_rows(), 4);
        assert_eq!(a.num_cols(), 4);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.row_nnz(0), 2);
        assert_eq!(a.row_nnz(1), 1);
        assert_eq!(a.row_range(2), 3..5);
        assert!(a.has_sorted_rows());
        assert_eq!(a.get(3, 1), Some(6.0));
        assert_eq!(a.get(3, 0), None);
    }

    #[test]
    fn identity_matrix() {
        let i = CsrMatrix::identity(5);
        assert_eq!(i.nnz(), 5);
        for r in 0..5 {
            assert_eq!(i.get(r, r), Some(1.0));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = example();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_moves_entries() {
        let a = example();
        let at = a.transpose();
        assert_eq!(at.get(1, 0), Some(1.0));
        assert_eq!(at.get(2, 0), Some(2.0));
        assert_eq!(at.get(0, 1), Some(3.0));
    }

    #[test]
    fn coo_roundtrip() {
        let a = example();
        let b = a.to_coo().to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn permute_identity_is_noop() {
        let a = example();
        let perm: Vec<usize> = (0..4).collect();
        assert_eq!(a.permute_symmetric(&perm), a);
    }

    #[test]
    fn permute_reversal() {
        let a = example();
        let perm = vec![3, 2, 1, 0];
        let p = a.permute_symmetric(&perm);
        // Old (3,1)=6.0 maps to new (0,2).
        assert_eq!(p.get(0, 2), Some(6.0));
        // Old (1,0)=3.0 maps to new (2,3).
        assert_eq!(p.get(2, 3), Some(3.0));
        // Applying the inverse (same reversal) restores the matrix.
        assert_eq!(p.permute_symmetric(&perm), a);
    }

    #[test]
    fn byte_accounting_matches_paper_formulas() {
        let a = example();
        // 7 nonzeros: 8*7 + 4*7 = 84 bytes, rowptr: 8*5 = 40.
        assert_eq!(a.matrix_bytes(), 84 + 40);
        // Vectors: (4 + 4) * 8 = 64.
        assert_eq!(a.working_set_bytes(), 84 + 40 + 64);
    }

    #[test]
    #[should_panic(expected = "rowptr must end at nnz")]
    fn invalid_rowptr_rejected() {
        CsrMatrix::from_parts(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index 5 out of bounds")]
    fn invalid_colidx_rejected() {
        CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_rowptr_rejected() {
        CsrMatrix::from_parts(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 1.0]);
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let a = example();
        // Equal structure, equal fingerprint — deterministic across calls.
        assert_eq!(a.fingerprint(), example().fingerprint());
        // Values do not participate: the model only sees the pattern.
        let mut b = example();
        for v in b.values_mut() {
            *v *= -3.5;
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_patterns() {
        let a = example();
        // Moving one nonzero to a different column changes the print.
        let shifted = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 7],
            vec![1, 3, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        );
        assert_ne!(a.fingerprint(), shifted.fingerprint());
        // Same arrays, different dimensions (extra empty column).
        let wider = CsrMatrix::from_parts(
            4,
            5,
            vec![0, 2, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        );
        assert_ne!(a.fingerprint(), wider.fingerprint());
        // Same flat nonzero sequence, different row boundaries.
        let rebalanced = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 1, 3, 5, 7],
            vec![1, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        );
        assert_ne!(a.fingerprint(), rebalanced.fingerprint());
        assert_ne!(a.fingerprint(), CsrMatrix::identity(4).fingerprint());
    }
}
