//! Static row partitioning of a CSR matrix across threads.
//!
//! The paper's kernel parallelises the outer row loop with an OpenMP
//! worksharing construct. With the default static schedule each thread
//! receives one contiguous block of rows of (nearly) equal *row* count —
//! that is [`RowPartition::static_rows`]. Alappat et al.'s load-balancing
//! optimisation instead equalises the *nonzero* count per thread, which is
//! [`RowPartition::balanced_nnz`] (used by the Table 1 comparator).

use crate::csr::CsrMatrix;

/// A partition of the rows `0..num_rows` into `num_parts` contiguous blocks.
///
/// Block `t` covers the half-open row range `bounds[t]..bounds[t + 1]`.
/// Blocks may be empty when there are more parts than rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowPartition {
    bounds: Vec<usize>,
}

impl RowPartition {
    /// Partitions rows into `num_parts` blocks of (nearly) equal row count,
    /// mimicking an OpenMP `schedule(static)` worksharing loop.
    ///
    /// The first `num_rows % num_parts` blocks receive one extra row.
    ///
    /// # Panics
    ///
    /// Panics if `num_parts == 0`.
    pub fn static_rows(num_rows: usize, num_parts: usize) -> Self {
        assert!(num_parts > 0, "cannot partition into zero parts");
        let base = num_rows / num_parts;
        let extra = num_rows % num_parts;
        let mut bounds = Vec::with_capacity(num_parts + 1);
        let mut pos = 0;
        bounds.push(0);
        for t in 0..num_parts {
            pos += base + usize::from(t < extra);
            bounds.push(pos);
        }
        debug_assert_eq!(pos, num_rows);
        RowPartition { bounds }
    }

    /// Partitions rows into `num_parts` contiguous blocks of (nearly) equal
    /// *nonzero* count, the load-balancing scheme of Alappat et al.
    ///
    /// Boundaries are chosen greedily: block `t` ends at the first row whose
    /// cumulative nonzero count reaches `(t + 1) / num_parts` of the total.
    ///
    /// # Panics
    ///
    /// Panics if `num_parts == 0`.
    pub fn balanced_nnz(matrix: &CsrMatrix, num_parts: usize) -> Self {
        assert!(num_parts > 0, "cannot partition into zero parts");
        let num_rows = matrix.num_rows();
        let total = matrix.nnz() as u128;
        let rowptr = matrix.rowptr();
        let mut bounds = Vec::with_capacity(num_parts + 1);
        bounds.push(0);
        let mut row = 0usize;
        for t in 0..num_parts {
            let target = (total * (t as u128 + 1)) / num_parts as u128;
            while row < num_rows && (rowptr[row + 1] as u128) < target {
                row += 1;
            }
            // Include the row that crosses the target, except after the last.
            if t + 1 < num_parts {
                if row < num_rows {
                    row += 1;
                }
                bounds.push(row);
            } else {
                bounds.push(num_rows);
            }
        }
        RowPartition { bounds }
    }

    /// Number of blocks.
    pub fn num_parts(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The row range of block `t`.
    pub fn range(&self, t: usize) -> std::ops::Range<usize> {
        self.bounds[t]..self.bounds[t + 1]
    }

    /// Iterates over all block ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_parts()).map(move |t| self.range(t))
    }

    /// The raw boundary array (`num_parts + 1` entries).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Maximum number of nonzeros assigned to any block — the makespan that
    /// governs parallel SpMV load balance.
    pub fn max_block_nnz(&self, matrix: &CsrMatrix) -> usize {
        self.iter()
            .map(|r| (matrix.rowptr()[r.end] - matrix.rowptr()[r.start]) as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn skewed_matrix() -> CsrMatrix {
        // 8 rows; row 0 has 16 nonzeros, the rest have 1 each.
        let mut coo = CooMatrix::new(8, 16);
        for c in 0..16 {
            coo.push(0, c, 1.0);
        }
        for r in 1..8 {
            coo.push(r, r, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn static_rows_exact_division() {
        let p = RowPartition::static_rows(12, 4);
        assert_eq!(p.bounds(), &[0, 3, 6, 9, 12]);
    }

    #[test]
    fn static_rows_with_remainder() {
        let p = RowPartition::static_rows(10, 4);
        assert_eq!(p.bounds(), &[0, 3, 6, 8, 10]);
        let total: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn static_rows_more_parts_than_rows() {
        let p = RowPartition::static_rows(2, 5);
        assert_eq!(p.num_parts(), 5);
        let total: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
        // Ranges are contiguous and non-overlapping.
        for t in 0..4 {
            assert_eq!(p.range(t).end, p.range(t + 1).start);
        }
    }

    #[test]
    fn balanced_nnz_covers_all_rows() {
        let m = skewed_matrix();
        let p = RowPartition::balanced_nnz(&m, 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.bounds()[0], 0);
        assert_eq!(*p.bounds().last().unwrap(), 8);
    }

    #[test]
    fn balanced_nnz_beats_static_on_skewed_matrix() {
        let m = skewed_matrix();
        let stat = RowPartition::static_rows(m.num_rows(), 4);
        let bal = RowPartition::balanced_nnz(&m, 4);
        // Static: block 0 holds the fat row plus another -> 17 nnz.
        // Balanced: fat row isolated -> 16 nnz.
        assert!(bal.max_block_nnz(&m) <= stat.max_block_nnz(&m));
        assert_eq!(bal.max_block_nnz(&m), 16);
    }

    #[test]
    fn balanced_nnz_uniform_matrix_matches_static() {
        let m = CsrMatrix::identity(12);
        let bal = RowPartition::balanced_nnz(&m, 4);
        let total: usize = bal.iter().map(|r| r.len()).sum();
        assert_eq!(total, 12);
        assert_eq!(bal.max_block_nnz(&m), 3);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        RowPartition::static_rows(4, 0);
    }
}
