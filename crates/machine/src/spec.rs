//! Machine selection specs: named presets and the `custom:` grammar.
//!
//! `--machine` (and the batch `machine` directive) accepts:
//!
//! * `a64fx` — the paper's machine, the default everywhere;
//! * `generic-x86` — the three-level what-if preset;
//! * `custom:<spec>` — a declarative hierarchy, `;`-separated fields with
//!   `,`-separated level parameters:
//!
//! ```text
//! custom:cores=8;domain=8;l1=32k,8,64;l2=1m,16,64;l3=32m,16,64,shared;mem=50g
//! ```
//!
//! Level keys `l1..l9` must be contiguous from `l1`; each takes
//! `size,ways,line[,shared][,sector=W]`. Sizes accept `k`/`m`/`g` binary
//! suffixes; `mem` (bytes/s, decimal `k`/`m`/`g`) sets the memory link of
//! the last level, `clock` (Hz) the core clock. The last level is shared
//! implicitly. Errors are typed ([`MachineParseError`]) with pointed
//! messages, mirroring the `FormatSpec::parse` hardening.

use crate::hierarchy::{EcmOverlap, HierarchyConfig, HierarchyError, LevelScope};

#[cfg(test)]
use crate::hierarchy::CacheHierarchy;
use crate::{CacheGeometry, LevelConfig, Replacement, SectorPolicy, TimingParams};
use std::fmt;

/// A parsed `--machine` argument. Carries enough to build the
/// [`HierarchyConfig`] at any capacity scale.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum MachineSpec {
    /// The `a64fx` preset (the default machine everywhere).
    #[default]
    A64fx,
    /// The `generic-x86` preset.
    GenericX86,
    /// A `custom:` hierarchy, already validated.
    Custom(HierarchyConfig),
}

/// A problem parsing a `--machine` argument.
#[derive(Clone, Debug, PartialEq)]
pub enum MachineParseError {
    /// Empty string.
    Empty,
    /// Not a preset and not `custom:`.
    UnknownMachine(String),
    /// `custom:` with nothing after it.
    EmptyCustom,
    /// An unrecognised `key=value` field.
    UnknownKey(String),
    /// The same field given twice.
    DuplicateKey(String),
    /// A field without `=`.
    MissingValue(String),
    /// A level list ends in a comma, e.g. `l1=32k,8,64,`.
    TrailingComma(String),
    /// A number (or suffixed size) that does not parse.
    BadNumber {
        /// Field the number appeared in.
        field: String,
        /// The offending token.
        value: String,
    },
    /// A level spec with too few or unrecognised parameters.
    BadLevel {
        /// Level key, e.g. `l2`.
        level: String,
        /// What is wrong.
        detail: String,
    },
    /// Level keys skip a number (e.g. `l1` and `l3` with no `l2`).
    NonContiguousLevels(String),
    /// No `l1=` field at all.
    MissingLevels,
    /// The assembled hierarchy failed structural validation (zero ways,
    /// non-power-of-two line size, ragged sets, ...).
    Invalid(HierarchyError),
}

impl fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineParseError::Empty => {
                write!(
                    f,
                    "empty machine spec (expected a64fx, generic-x86 or custom:...)"
                )
            }
            MachineParseError::UnknownMachine(s) => write!(
                f,
                "unknown machine '{s}' (expected a64fx, generic-x86 or custom:<spec>)"
            ),
            MachineParseError::EmptyCustom => write!(
                f,
                "custom: needs fields, e.g. custom:cores=8;domain=8;l1=32k,8,64;l2=1m,16,64;mem=50g"
            ),
            MachineParseError::UnknownKey(k) => write!(
                f,
                "unknown machine field '{k}' (expected cores, domain, l1..l9, mem or clock)"
            ),
            MachineParseError::DuplicateKey(k) => write!(f, "machine field '{k}' given twice"),
            MachineParseError::MissingValue(k) => {
                write!(f, "machine field '{k}' needs a value (key=value)")
            }
            MachineParseError::TrailingComma(field) => write!(
                f,
                "trailing comma in '{field}' (expected size,ways,line[,shared][,sector=W])"
            ),
            MachineParseError::BadNumber { field, value } => {
                write!(f, "bad number '{value}' in machine field '{field}'")
            }
            MachineParseError::BadLevel { level, detail } => {
                write!(f, "bad level spec '{level}': {detail}")
            }
            MachineParseError::NonContiguousLevels(k) => write!(
                f,
                "level keys must be contiguous from l1 (missing level before '{k}')"
            ),
            MachineParseError::MissingLevels => {
                write!(f, "custom machine needs at least l1=size,ways,line")
            }
            MachineParseError::Invalid(e) => write!(f, "invalid machine: {e}"),
        }
    }
}

impl std::error::Error for MachineParseError {}

impl MachineSpec {
    /// Parses `a64fx`, `generic-x86` or `custom:<spec>`.
    pub fn parse(s: &str) -> Result<MachineSpec, MachineParseError> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(MachineParseError::Empty);
        }
        let lower = trimmed.to_ascii_lowercase();
        match lower.as_str() {
            "a64fx" => return Ok(MachineSpec::A64fx),
            "generic-x86" | "generic_x86" | "x86" => return Ok(MachineSpec::GenericX86),
            _ => {}
        }
        if let Some(body) = lower.strip_prefix("custom:") {
            return parse_custom(body).map(MachineSpec::Custom);
        }
        Err(MachineParseError::UnknownMachine(trimmed.to_string()))
    }

    /// Canonical label; doubles as the report's `machine` field.
    pub fn label(&self) -> &str {
        match self {
            MachineSpec::A64fx => "a64fx",
            MachineSpec::GenericX86 => "generic-x86",
            MachineSpec::Custom(h) => &h.name,
        }
    }

    /// Is this the default machine (whose reports stay byte-identical to
    /// the pre-abstraction output)?
    pub fn is_default(&self) -> bool {
        matches!(self, MachineSpec::A64fx)
    }

    /// Builds the hierarchy at a capacity scale (1 = full size), matching
    /// the engine's `a64fx_scaled` convention for every backend.
    pub fn hierarchy(&self, scale: usize) -> HierarchyConfig {
        let base = match self {
            MachineSpec::A64fx => HierarchyConfig::a64fx(),
            MachineSpec::GenericX86 => HierarchyConfig::generic_x86(),
            MachineSpec::Custom(h) => h.clone(),
        };
        if scale <= 1 {
            base
        } else {
            base.scaled(scale)
        }
    }
}

fn parse_custom(body: &str) -> Result<HierarchyConfig, MachineParseError> {
    if body.trim().is_empty() {
        return Err(MachineParseError::EmptyCustom);
    }
    let mut cores: Option<usize> = None;
    let mut domain: Option<usize> = None;
    let mut mem_bw: Option<f64> = None;
    let mut clock: Option<f64> = None;
    let mut levels: Vec<(usize, LevelConfig)> = Vec::new();

    for field in body.split(';') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| MachineParseError::MissingValue(field.to_string()))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "cores" => set_once(&mut cores, key, parse_count(key, value)?)?,
            "domain" => set_once(&mut domain, key, parse_count(key, value)?)?,
            "mem" => set_once(&mut mem_bw, key, parse_rate(key, value)?)?,
            "clock" => set_once(&mut clock, key, parse_rate(key, value)?)?,
            _ if key.len() >= 2 && key.starts_with('l') => {
                let idx: usize = key[1..]
                    .parse()
                    .map_err(|_| MachineParseError::UnknownKey(key.to_string()))?;
                if idx == 0 || idx > 9 {
                    return Err(MachineParseError::UnknownKey(key.to_string()));
                }
                if levels.iter().any(|(i, _)| *i == idx) {
                    return Err(MachineParseError::DuplicateKey(key.to_string()));
                }
                levels.push((idx, parse_level(field, key, value)?));
            }
            _ => return Err(MachineParseError::UnknownKey(key.to_string())),
        }
    }

    if levels.is_empty() {
        return Err(MachineParseError::MissingLevels);
    }
    levels.sort_by_key(|(i, _)| *i);
    for (pos, (idx, _)) in levels.iter().enumerate() {
        if *idx != pos + 1 {
            return Err(MachineParseError::NonContiguousLevels(format!("l{idx}")));
        }
    }
    let mut levels: Vec<LevelConfig> = levels.into_iter().map(|(_, l)| l).collect();
    // The last level is the shared LLC whether or not the spec said so,
    // and its link is the memory interface.
    let num = levels.len();
    let clock = clock.unwrap_or(2.5e9);
    let mem_bw = mem_bw.unwrap_or(50.0e9);
    for (i, level) in levels.iter_mut().enumerate() {
        if i + 1 == num {
            level.scope = LevelScope::PerDomain;
            level.link_bandwidth_bps = mem_bw;
            level.link_latency_s = 100.0e-9;
        } else if level.link_bandwidth_bps == 0.0 {
            // Inner links default to a 64 B/cy-style per-core path that
            // halves per level down the hierarchy.
            level.link_bandwidth_bps = 64.0 * clock / (1 << i) as f64;
            level.link_latency_s = (12 << i) as f64 / clock;
        }
    }
    let cores = cores.unwrap_or(8);
    let cfg = HierarchyConfig {
        name: "custom".to_string(),
        num_cores: cores,
        cores_per_domain: domain.unwrap_or(cores.max(1)),
        levels,
        replacement: Replacement::Lru,
        prefetch: crate::PrefetchConfig {
            enabled: true,
            l2_distance: 8,
            l1_distance: 2,
            streams: 8,
        },
        timing: TimingParams {
            clock_hz: clock,
            cycles_per_nnz: 1.0,
            domain_bandwidth: mem_bw,
            demand_miss_cost: 100.0e-9 / 8.0,
            l1_refill_cost: 12.0 / clock / 24.0,
        },
        overlap: EcmOverlap::Overlapped,
    };
    cfg.validate().map_err(MachineParseError::Invalid)?;
    Ok(cfg)
}

fn set_once<T>(slot: &mut Option<T>, key: &str, value: T) -> Result<(), MachineParseError> {
    if slot.is_some() {
        return Err(MachineParseError::DuplicateKey(key.to_string()));
    }
    *slot = Some(value);
    Ok(())
}

/// `size,ways,line[,shared][,sector=W]` — scope defaults to private; the
/// caller forces the last level shared.
fn parse_level(field: &str, key: &str, value: &str) -> Result<LevelConfig, MachineParseError> {
    if value.ends_with(',') {
        return Err(MachineParseError::TrailingComma(field.to_string()));
    }
    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
    if parts.len() < 3 {
        return Err(MachineParseError::BadLevel {
            level: key.to_string(),
            detail: format!("expected size,ways,line[,shared][,sector=W], got '{value}'"),
        });
    }
    if parts.iter().any(|p| p.is_empty()) {
        return Err(MachineParseError::TrailingComma(field.to_string()));
    }
    let size = parse_size(key, parts[0])?;
    let ways = parse_usize(key, parts[1])?;
    let line = parse_size(key, parts[2])?;
    let mut level = LevelConfig::private(CacheGeometry::new(size, ways, line), 0.0, 0.0);
    for extra in &parts[3..] {
        if *extra == "shared" {
            level.scope = LevelScope::PerDomain;
        } else if let Some(w) = extra.strip_prefix("sector=") {
            level.sector = SectorPolicy::ways(parse_usize(key, w)?);
        } else {
            return Err(MachineParseError::BadLevel {
                level: key.to_string(),
                detail: format!("unknown level option '{extra}' (expected shared or sector=W)"),
            });
        }
    }
    Ok(level)
}

fn parse_usize(field: &str, value: &str) -> Result<usize, MachineParseError> {
    value.parse().map_err(|_| MachineParseError::BadNumber {
        field: field.to_string(),
        value: value.to_string(),
    })
}

fn parse_count(field: &str, value: &str) -> Result<usize, MachineParseError> {
    parse_usize(field, value)
}

/// Binary-suffixed byte size: `64`, `32k`, `1m`, `2g`.
fn parse_size(field: &str, value: &str) -> Result<usize, MachineParseError> {
    let (digits, mult) = match value.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&value[..value.len() - 1], 1usize << 10),
        Some(b'm') | Some(b'M') => (&value[..value.len() - 1], 1usize << 20),
        Some(b'g') | Some(b'G') => (&value[..value.len() - 1], 1usize << 30),
        _ => (value, 1usize),
    };
    let n: usize = digits.parse().map_err(|_| MachineParseError::BadNumber {
        field: field.to_string(),
        value: value.to_string(),
    })?;
    Ok(n * mult)
}

/// Decimal-suffixed rate (bytes/s or Hz): `50g` = 50e9.
fn parse_rate(field: &str, value: &str) -> Result<f64, MachineParseError> {
    let (digits, mult) = match value.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&value[..value.len() - 1], 1.0e3),
        Some(b'm') | Some(b'M') => (&value[..value.len() - 1], 1.0e6),
        Some(b'g') | Some(b'G') => (&value[..value.len() - 1], 1.0e9),
        _ => (value, 1.0),
    };
    let n: f64 = digits.parse().map_err(|_| MachineParseError::BadNumber {
        field: field.to_string(),
        value: value.to_string(),
    })?;
    if !(n.is_finite() && n > 0.0) {
        return Err(MachineParseError::BadNumber {
            field: field.to_string(),
            value: value.to_string(),
        });
    }
    Ok(n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(MachineSpec::parse("a64fx"), Ok(MachineSpec::A64fx));
        assert_eq!(MachineSpec::parse(" A64FX "), Ok(MachineSpec::A64fx));
        assert_eq!(
            MachineSpec::parse("generic-x86"),
            Ok(MachineSpec::GenericX86)
        );
        assert_eq!(MachineSpec::parse("x86"), Ok(MachineSpec::GenericX86));
        assert!(MachineSpec::parse("a64fx").unwrap().is_default());
        assert!(!MachineSpec::parse("x86").unwrap().is_default());
    }

    #[test]
    fn unknown_machine_is_pointed() {
        let err = MachineSpec::parse("sparc").unwrap_err();
        assert_eq!(err, MachineParseError::UnknownMachine("sparc".into()));
        assert!(err.to_string().contains("a64fx, generic-x86 or custom:"));
        assert!(matches!(
            MachineSpec::parse("  "),
            Err(MachineParseError::Empty)
        ));
    }

    #[test]
    fn custom_roundtrip() {
        let spec = MachineSpec::parse(
            "custom:cores=4;domain=4;l1=32k,8,64;l2=1m,16,64;l3=16m,16,64;mem=40g",
        )
        .unwrap();
        let h = spec.hierarchy(1);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.num_cores, 4);
        assert_eq!(h.level(2).scope, LevelScope::PerDomain);
        assert_eq!(h.level(1).scope, LevelScope::PerCore);
        assert_eq!(h.level(2).link_bandwidth_bps, 40.0e9);
        assert_eq!(h.line_bytes(), 64);
        h.validate().unwrap();
    }

    #[test]
    fn custom_sector_and_shared_options() {
        let spec =
            MachineSpec::parse("custom:cores=2;l1=4k,4,256;l2=64k,16,256,shared,sector=5").unwrap();
        let h = spec.hierarchy(1);
        assert_eq!(h.level(1).sector, SectorPolicy::ways(5));
        assert_eq!(h.level(1).scope, LevelScope::PerDomain);
    }

    #[test]
    fn trailing_comma_rejected() {
        let err = MachineSpec::parse("custom:l1=32k,8,64,;l2=1m,16,64").unwrap_err();
        assert!(
            matches!(err, MachineParseError::TrailingComma(_)),
            "{err:?}"
        );
        assert!(err.to_string().contains("trailing comma"));
        // An interior empty slot is the same mistake.
        let err = MachineSpec::parse("custom:l1=32k,,64;l2=1m,16,64").unwrap_err();
        assert!(
            matches!(err, MachineParseError::TrailingComma(_)),
            "{err:?}"
        );
    }

    #[test]
    fn zero_ways_rejected() {
        let err = MachineSpec::parse("custom:l1=32k,0,64;l2=1m,16,64").unwrap_err();
        assert_eq!(
            err,
            MachineParseError::Invalid(HierarchyError::ZeroWays { level: 0 })
        );
        assert!(err.to_string().contains("zero ways"));
    }

    #[test]
    fn non_power_of_two_line_rejected() {
        let err = MachineSpec::parse("custom:l1=30k,8,96;l2=1m,16,96").unwrap_err();
        assert!(
            matches!(
                err,
                MachineParseError::Invalid(HierarchyError::LineNotPowerOfTwo {
                    level: 0,
                    line_bytes: 96
                })
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn structural_errors_are_pointed() {
        assert!(matches!(
            MachineSpec::parse("custom:"),
            Err(MachineParseError::EmptyCustom)
        ));
        assert!(matches!(
            MachineSpec::parse("custom:cores=8"),
            Err(MachineParseError::MissingLevels)
        ));
        assert!(matches!(
            MachineSpec::parse("custom:l1=32k,8,64;l3=1m,16,64"),
            Err(MachineParseError::NonContiguousLevels(_))
        ));
        assert!(matches!(
            MachineSpec::parse("custom:l1=32k,8,64;bogus=3"),
            Err(MachineParseError::UnknownKey(_))
        ));
        assert!(matches!(
            MachineSpec::parse("custom:cores"),
            Err(MachineParseError::MissingValue(_))
        ));
        assert!(matches!(
            MachineSpec::parse("custom:cores=8;cores=9;l1=32k,8,64"),
            Err(MachineParseError::DuplicateKey(_))
        ));
        assert!(matches!(
            MachineSpec::parse("custom:l1=32q,8,64"),
            Err(MachineParseError::BadNumber { .. })
        ));
        assert!(matches!(
            MachineSpec::parse("custom:l1=32k,8"),
            Err(MachineParseError::BadLevel { .. })
        ));
        assert!(matches!(
            MachineSpec::parse("custom:l1=32k,8,64,fancy;l2=1m,16,64"),
            Err(MachineParseError::BadLevel { .. })
        ));
    }

    #[test]
    fn labels_and_scaling() {
        assert_eq!(MachineSpec::A64fx.label(), "a64fx");
        assert_eq!(MachineSpec::GenericX86.label(), "generic-x86");
        let h = MachineSpec::A64fx.hierarchy(16);
        assert_eq!(h.level(1).geometry.size_bytes, 512 << 10);
        let h1 = MachineSpec::A64fx.hierarchy(1);
        assert_eq!(h1, HierarchyConfig::a64fx());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("l1", "64").unwrap(), 64);
        assert_eq!(parse_size("l1", "32k").unwrap(), 32 << 10);
        assert_eq!(parse_size("l1", "1M").unwrap(), 1 << 20);
        assert_eq!(parse_size("l1", "2g").unwrap(), 2 << 30);
        assert_eq!(parse_rate("mem", "50g").unwrap(), 50.0e9);
        assert!(parse_rate("mem", "-3g").is_err());
    }
}
