//! Declarative machine models for the locality pipeline.
//!
//! This crate is the single source of truth for every hardware number in
//! the workspace: cache geometries, sector policies, prefetch and timing
//! parameters live in [`HierarchyConfig`] presets here, and everything
//! else — the analytic models in `locality-core`, the simulator in
//! `a64fx`, the batch engine, the CLI and the validator — consumes them
//! through the [`CacheHierarchy`] contract.
//!
//! * [`geometry`] — per-level geometry and shared policy types
//!   (re-exported by `a64fx` for compatibility).
//! * [`hierarchy`] — [`LevelConfig`]/[`HierarchyConfig`], validation,
//!   the `a64fx` and `generic-x86` presets, fingerprints.
//! * [`spec`] — [`MachineSpec`]: `--machine` parsing with typed errors,
//!   including the `custom:` grammar.
//! * [`ecm`] — the Execution-Cache-Memory throughput model that turns
//!   predicted per-link traffic into Gflop/s.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ecm;
pub mod geometry;
pub mod hierarchy;
pub mod spec;

pub use ecm::{EcmEstimate, EcmInput};
pub use geometry::{CacheGeometry, PrefetchConfig, Replacement, SectorPolicy, TimingParams};
pub use hierarchy::{
    CacheHierarchy, EcmOverlap, HierarchyConfig, HierarchyError, Inclusion, LevelConfig,
    LevelScope, A64FX_LINE_BYTES,
};
pub use spec::{MachineParseError, MachineSpec};
