//! ECM-style throughput model over a cache hierarchy.
//!
//! The Execution-Cache-Memory model (Hager et al.; applied to the A64FX
//! by Alappat et al., see PAPERS.md) decomposes the runtime of a
//! bandwidth-limited loop into an in-core execution time and one data
//! transfer time per hierarchy link, each simply `bytes / link bandwidth`.
//! The machine's [`EcmOverlap`] rule says how the contributions compose:
//! the A64FX overlaps nothing (total = sum, the key finding of the ECM
//! papers), while a generic x86 core overlaps transfers behind execution
//! (total = max).
//!
//! The caller supplies the traffic volumes; in this repo the engine
//! derives them from the locality model's predictions — the memory-link
//! volume is the predicted LLC miss count times the line size (the
//! paper's central quantity), and inner links carry at least the
//! workload's distinct-line footprint (every line crosses every link at
//! least once per iteration; a streaming lower bound that is exact for
//! the matrix/index/result streams and optimistic for repeated x gathers
//! that miss in inner levels).

use crate::hierarchy::{CacheHierarchy, EcmOverlap, HierarchyConfig, LevelScope};

/// Per-iteration work and traffic volumes for one ECM evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct EcmInput {
    /// Useful floating-point operations per measured iteration.
    pub flops: f64,
    /// In-core execution seconds (critical-path core, all pipelines).
    pub core_seconds: f64,
    /// Bytes crossing the link below level `i` per iteration, one entry
    /// per hierarchy level; `link_bytes[last]` is the memory interface.
    /// Private-link entries are per critical-path core; the memory entry
    /// is per critical-path domain (matching each link's bandwidth
    /// scope in [`crate::LevelConfig::link_bandwidth_bps`]).
    pub link_bytes: Vec<f64>,
}

/// An ECM prediction for one sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct EcmEstimate {
    /// In-core execution time in seconds.
    pub t_core_s: f64,
    /// Transfer time per link, innermost first; the last entry is the
    /// memory interface.
    pub t_link_s: Vec<f64>,
    /// Composed total per the machine's overlap rule.
    pub t_total_s: f64,
    /// Predicted throughput in Gflop/s.
    pub gflops: f64,
    /// The largest single contribution: `"core"`, `"l1-l2"`, ...,
    /// `"mem"`.
    pub bottleneck: String,
}

/// Evaluates the ECM composition for `input` on `hier`.
///
/// # Panics
///
/// Panics if `input.link_bytes.len()` differs from the hierarchy's level
/// count.
pub fn estimate(hier: &HierarchyConfig, input: &EcmInput) -> EcmEstimate {
    assert_eq!(
        input.link_bytes.len(),
        hier.num_levels(),
        "one traffic volume per hierarchy link"
    );
    let t_link_s: Vec<f64> = input
        .link_bytes
        .iter()
        .zip(&hier.levels)
        .map(|(bytes, level)| bytes / level.link_bandwidth_bps)
        .collect();
    let t_total_s = match hier.overlap {
        EcmOverlap::Serial => input.core_seconds + t_link_s.iter().sum::<f64>(),
        EcmOverlap::Overlapped => t_link_s
            .iter()
            .fold(input.core_seconds, |acc, t| acc.max(*t)),
    };
    let mut bottleneck = "core".to_string();
    let mut worst = input.core_seconds;
    for (i, t) in t_link_s.iter().enumerate() {
        if *t > worst {
            worst = *t;
            bottleneck = link_label(hier, i);
        }
    }
    let gflops = if t_total_s > 0.0 {
        input.flops / t_total_s / 1.0e9
    } else {
        0.0
    };
    EcmEstimate {
        t_core_s: input.core_seconds,
        t_link_s,
        t_total_s,
        gflops,
        bottleneck,
    }
}

/// Human label for the link below level `i`: `"l1-l2"`, `"l2-l3"`,
/// `"mem"` for the last.
pub fn link_label(hier: &HierarchyConfig, i: usize) -> String {
    if i + 1 == hier.num_levels() {
        "mem".to_string()
    } else {
        format!("l{}-l{}", i + 1, i + 2)
    }
}

/// Derives a per-core in-core execution time from the timing parameters:
/// the critical-path core retires `max_core_ops` indexed-gather FMA
/// groups at `cycles_per_nnz` apiece.
pub fn core_seconds(hier: &HierarchyConfig, max_core_ops: f64) -> f64 {
    max_core_ops * hier.timing.cycles_per_nnz / hier.timing.clock_hz
}

/// Sanity helper used by tests and docs: the machine's streaming balance
/// in flops per byte at the memory interface.
pub fn memory_balance_flops_per_byte(hier: &HierarchyConfig) -> f64 {
    let mem_bw: f64 = hier.last_level().link_bandwidth_bps * hier.num_domains() as f64;
    let peak = hier.num_cores as f64 * 2.0 * hier.timing.clock_hz / hier.timing.cycles_per_nnz;
    peak / mem_bw
}

/// True when level `i`'s link bandwidth is per-core rather than
/// per-domain (mirrors [`crate::LevelConfig::link_bandwidth_bps`] scope).
pub fn link_is_per_core(hier: &HierarchyConfig, i: usize) -> bool {
    hier.level(i).scope == LevelScope::PerCore && i + 1 != hier.num_levels()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_input(hier: &HierarchyConfig, nnz: f64, bytes_per_nnz: f64) -> EcmInput {
        let per_core = nnz / hier.num_cores as f64;
        let per_domain = nnz / hier.num_domains() as f64;
        let mut link_bytes = vec![per_core * bytes_per_nnz; hier.num_levels()];
        *link_bytes.last_mut().unwrap() = per_domain * bytes_per_nnz;
        EcmInput {
            flops: 2.0 * nnz,
            core_seconds: core_seconds(hier, per_core),
            link_bytes,
        }
    }

    #[test]
    fn a64fx_streaming_spmv_is_memory_bound() {
        let h = HierarchyConfig::a64fx();
        // 12 bytes/nnz streaming CSR: value (8) + column index (4).
        let input = streaming_input(&h, 1.0e9, 12.0);
        let e = estimate(&h, &input);
        assert_eq!(e.bottleneck, "mem");
        // Serial composition: strictly below the pure-bandwidth roofline
        // (800 GB/s / 12 B ≈ 133 Gflop/s), and above half of it.
        assert!(e.gflops < 133.4, "{}", e.gflops);
        assert!(e.gflops > 60.0, "{}", e.gflops);
        // Sum rule: total is the sum of all contributions.
        let sum = e.t_core_s + e.t_link_s.iter().sum::<f64>();
        assert!((e.t_total_s - sum).abs() < 1e-15);
    }

    #[test]
    fn overlapped_machine_takes_the_max() {
        let h = HierarchyConfig::generic_x86();
        let input = streaming_input(&h, 1.0e8, 12.0);
        let e = estimate(&h, &input);
        let max = e.t_link_s.iter().fold(e.t_core_s, |acc, t| acc.max(*t));
        assert_eq!(e.t_total_s, max);
        assert_eq!(e.bottleneck, "mem");
        // DDR at 50 GB/s: 12 B/flop-pair → ~8.3 Gflop/s roofline.
        assert!((e.gflops - 2.0 * 50.0e9 / 12.0 / 1.0e9).abs() < 0.1);
    }

    #[test]
    fn core_bound_when_traffic_is_tiny() {
        let h = HierarchyConfig::generic_x86();
        let input = EcmInput {
            flops: 2.0e9,
            core_seconds: 1.0,
            link_bytes: vec![1.0; 3],
        };
        let e = estimate(&h, &input);
        assert_eq!(e.bottleneck, "core");
        assert_eq!(e.t_total_s, 1.0);
        assert!((e.gflops - 2.0).abs() < 1e-12);
    }

    #[test]
    fn link_labels() {
        let h = HierarchyConfig::generic_x86();
        assert_eq!(link_label(&h, 0), "l1-l2");
        assert_eq!(link_label(&h, 1), "l2-l3");
        assert_eq!(link_label(&h, 2), "mem");
        let a = HierarchyConfig::a64fx();
        assert_eq!(link_label(&a, 0), "l1-l2");
        assert_eq!(link_label(&a, 1), "mem");
    }

    #[test]
    fn balance_says_a64fx_spmv_is_memory_bound() {
        // Machine balance far above SpMV's ~1/6 flop per byte.
        assert!(memory_balance_flops_per_byte(&HierarchyConfig::a64fx()) > 0.2);
    }

    #[test]
    #[should_panic(expected = "one traffic volume per hierarchy link")]
    fn wrong_link_count_panics() {
        let h = HierarchyConfig::a64fx();
        let input = EcmInput {
            flops: 1.0,
            core_seconds: 0.0,
            link_bytes: vec![1.0],
        };
        let _ = estimate(&h, &input);
    }
}
