//! Declarative cache-hierarchy descriptions and the named presets.
//!
//! A [`HierarchyConfig`] is a list of [`LevelConfig`]s (closest to the
//! core first), plus topology, replacement/prefetch policy and the timing
//! parameters the analytic models need. The [`CacheHierarchy`] trait is
//! the read-only contract the rest of the stack consumes (see DESIGN.md);
//! `HierarchyConfig` is its canonical implementation.
//!
//! Presets:
//!
//! * [`HierarchyConfig::a64fx`] — the paper's machine. The numbers here
//!   are **the** source of truth for A64FX geometry; `a64fx::MachineConfig`
//!   projects them and everything downstream reads from there.
//! * [`HierarchyConfig::generic_x86`] — a generic three-level x86-style
//!   server socket (private L1/L2, shared non-inclusive L3, 64 B lines).

use crate::geometry::{CacheGeometry, PrefetchConfig, Replacement, SectorPolicy, TimingParams};
use std::fmt;

/// The A64FX cache-line size in bytes, at every level.
///
/// Exposed as a constant so tests and docs outside this crate can name the
/// value instead of restating the literal (the grep gate in
/// `tests/no_literal_geometry.rs` enforces this).
pub const A64FX_LINE_BYTES: usize = 256;

/// Who shares one instance of a cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelScope {
    /// One instance per core (private).
    PerCore,
    /// One instance per NUMA domain, shared by `cores_per_domain` cores.
    PerDomain,
}

/// Inclusion policy of a level with respect to the levels above it.
///
/// The simulator models every level as non-inclusive write-back
/// write-allocate (the A64FX L2 and modern x86 L3s behave this way); the
/// field is declarative so specs can record the intent, and validation
/// rejects `Inclusive`/`Exclusive` only where the simulator would silently
/// mis-model them (nowhere today — all three share the non-inclusive
/// fill/writeback flow, which over-counts inclusive victims slightly).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Inclusion {
    /// Neither inclusive nor exclusive: fills allocate, victims of upper
    /// levels are written back on eviction. The simulated behaviour.
    #[default]
    NonInclusive,
    /// Lower level keeps a superset of upper levels.
    Inclusive,
    /// Lower level holds only lines evicted from upper levels.
    Exclusive,
}

/// One cache level: geometry plus the policies and link parameters
/// attached to it.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelConfig {
    /// Set-associative geometry.
    pub geometry: CacheGeometry,
    /// Way-based sector partitioning for this level (OFF = disabled).
    pub sector: SectorPolicy,
    /// Private per core or shared per domain.
    pub scope: LevelScope,
    /// Declared inclusion policy.
    pub inclusion: Inclusion,
    /// Bandwidth of the link *below* this level (towards memory), in
    /// bytes/s: per core for a private level, per domain for a shared
    /// level. The last level's link is the memory interface. Feeds the
    /// ECM transfer-time terms.
    pub link_bandwidth_bps: f64,
    /// Load-to-use latency of a fill from the level below, in seconds.
    pub link_latency_s: f64,
}

impl LevelConfig {
    /// A private per-core level with default inclusion.
    pub fn private(geometry: CacheGeometry, link_bandwidth_bps: f64, link_latency_s: f64) -> Self {
        LevelConfig {
            geometry,
            sector: SectorPolicy::OFF,
            scope: LevelScope::PerCore,
            inclusion: Inclusion::NonInclusive,
            link_bandwidth_bps,
            link_latency_s,
        }
    }

    /// A shared per-domain level with default inclusion.
    pub fn shared(geometry: CacheGeometry, link_bandwidth_bps: f64, link_latency_s: f64) -> Self {
        LevelConfig {
            geometry,
            sector: SectorPolicy::OFF,
            scope: LevelScope::PerDomain,
            inclusion: Inclusion::NonInclusive,
            link_bandwidth_bps,
            link_latency_s,
        }
    }

    /// Capacity (in lines) of the partition holding sector-`sector` data.
    pub fn partition_lines(&self, sector: u8) -> usize {
        if !self.sector.enabled() {
            return self.geometry.total_lines();
        }
        match sector {
            0 => self
                .geometry
                .sector_lines(self.geometry.ways - self.sector.sector1_ways),
            1 => self.geometry.sector_lines(self.sector.sector1_ways),
            _ => panic!("only sectors 0 and 1 are modelled"),
        }
    }
}

/// How the ECM model composes in-core and transfer times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcmOverlap {
    /// No overlap between data transfers and execution: total time is the
    /// *sum* of the contributions. Alappat et al. found the A64FX behaves
    /// this way (no overlap of transfers across the memory hierarchy).
    Serial,
    /// Full overlap: total time is the *maximum* contribution (the
    /// classic optimistic ECM composition, closer to modern x86).
    Overlapped,
}

/// A machine description: an ordered cache hierarchy plus topology and
/// model parameters. Level 0 is closest to the core.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchyConfig {
    /// Preset / display name ("a64fx", "generic-x86", "custom").
    pub name: String,
    /// Total number of cores (= hardware threads used).
    pub num_cores: usize,
    /// Cores sharing each per-domain level (NUMA domain / CMG size).
    pub cores_per_domain: usize,
    /// Cache levels, closest to the core first. Private levels precede
    /// shared levels; the last level is shared (validated).
    pub levels: Vec<LevelConfig>,
    /// Replacement policy (all levels).
    pub replacement: Replacement,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// Analytic timing-model parameters.
    pub timing: TimingParams,
    /// ECM composition rule for this machine.
    pub overlap: EcmOverlap,
}

/// A structural problem with a [`HierarchyConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HierarchyError {
    /// The hierarchy has no levels at all.
    NoLevels,
    /// `num_cores` or `cores_per_domain` is zero.
    NoCores,
    /// A level has zero ways.
    ZeroWays {
        /// Level index (0 = closest to core).
        level: usize,
    },
    /// A level's line size is not a power of two.
    LineNotPowerOfTwo {
        /// Level index.
        level: usize,
        /// The offending line size.
        line_bytes: usize,
    },
    /// A level's capacity is not a whole number of sets.
    RaggedSets {
        /// Level index.
        level: usize,
    },
    /// Two levels disagree on the line size (the line-granular trace and
    /// model pipeline assume one line size end to end).
    MixedLineSize {
        /// Line size of level 0.
        first: usize,
        /// The first differing line size.
        other: usize,
    },
    /// A private level appears below a shared level.
    PrivateBelowShared {
        /// Index of the offending private level.
        level: usize,
    },
    /// The last level is private; the engine's domain fan-out needs a
    /// shared last level.
    LastLevelPrivate,
    /// A sector policy claims all (or more than all) of a level's ways.
    SectorTakesAllWays {
        /// Level index.
        level: usize,
        /// Sector-1 way count.
        sector1_ways: usize,
        /// Total ways at that level.
        ways: usize,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::NoLevels => write!(f, "hierarchy has no cache levels"),
            HierarchyError::NoCores => {
                write!(f, "num_cores and cores_per_domain must both be at least 1")
            }
            HierarchyError::ZeroWays { level } => {
                write!(f, "L{} has zero ways; associativity must be at least 1", level + 1)
            }
            HierarchyError::LineNotPowerOfTwo { level, line_bytes } => write!(
                f,
                "L{} line size {} is not a power of two",
                level + 1,
                line_bytes
            ),
            HierarchyError::RaggedSets { level } => write!(
                f,
                "L{} capacity is not a whole number of sets (size must divide into ways x line)",
                level + 1
            ),
            HierarchyError::MixedLineSize { first, other } => write!(
                f,
                "all levels must share one line size (saw {} and {}); the trace pipeline is line-granular",
                first, other
            ),
            HierarchyError::PrivateBelowShared { level } => write!(
                f,
                "L{} is private but sits below a shared level; private levels must precede shared ones",
                level + 1
            ),
            HierarchyError::LastLevelPrivate => {
                write!(f, "the last level must be shared (per-domain)")
            }
            HierarchyError::SectorTakesAllWays {
                level,
                sector1_ways,
                ways,
            } => write!(
                f,
                "L{} sector 1 cannot take {} of {} ways; at least one way must remain for sector 0",
                level + 1,
                sector1_ways,
                ways
            ),
        }
    }
}

/// Read-only contract every machine model satisfies; consumed by the
/// simulator, the engine and the validator. See DESIGN.md for the
/// invariants each method must uphold.
pub trait CacheHierarchy {
    /// Display name.
    fn name(&self) -> &str;
    /// Number of cache levels.
    fn num_levels(&self) -> usize;
    /// Level `i` (0 = closest to core). Panics if out of range.
    fn level(&self, i: usize) -> &LevelConfig;
    /// The uniform line size in bytes.
    fn line_bytes(&self) -> usize;
    /// Total cores.
    fn num_cores(&self) -> usize;
    /// Cores per NUMA domain.
    fn cores_per_domain(&self) -> usize;

    /// Number of domains in use.
    fn num_domains(&self) -> usize {
        self.num_cores().div_ceil(self.cores_per_domain())
    }

    /// Index of the first shared (per-domain) level.
    fn first_shared_level(&self) -> usize {
        (0..self.num_levels())
            .find(|&i| self.level(i).scope == LevelScope::PerDomain)
            .expect("validated hierarchies end in a shared level")
    }

    /// The last (memory-side) level.
    fn last_level(&self) -> &LevelConfig {
        self.level(self.num_levels() - 1)
    }

    /// Order-sensitive fingerprint over every modelled parameter; two
    /// hierarchies with equal fingerprints are interchangeable for
    /// caching purposes.
    fn fingerprint(&self) -> u64;
}

impl HierarchyConfig {
    /// Validates the structural invariants the stack relies on.
    pub fn validate(&self) -> Result<(), HierarchyError> {
        if self.levels.is_empty() {
            return Err(HierarchyError::NoLevels);
        }
        if self.num_cores == 0 || self.cores_per_domain == 0 {
            return Err(HierarchyError::NoCores);
        }
        let first_line = self.levels[0].geometry.line_bytes;
        let mut seen_shared = false;
        for (i, level) in self.levels.iter().enumerate() {
            let g = &level.geometry;
            if g.ways == 0 {
                return Err(HierarchyError::ZeroWays { level: i });
            }
            if !g.line_bytes.is_power_of_two() {
                return Err(HierarchyError::LineNotPowerOfTwo {
                    level: i,
                    line_bytes: g.line_bytes,
                });
            }
            if g.line_bytes != first_line {
                return Err(HierarchyError::MixedLineSize {
                    first: first_line,
                    other: g.line_bytes,
                });
            }
            if g.size_bytes % (g.ways * g.line_bytes) != 0 || g.size_bytes == 0 {
                return Err(HierarchyError::RaggedSets { level: i });
            }
            if level.sector.enabled() && level.sector.sector1_ways >= g.ways {
                return Err(HierarchyError::SectorTakesAllWays {
                    level: i,
                    sector1_ways: level.sector.sector1_ways,
                    ways: g.ways,
                });
            }
            match level.scope {
                LevelScope::PerDomain => seen_shared = true,
                LevelScope::PerCore if seen_shared => {
                    return Err(HierarchyError::PrivateBelowShared { level: i });
                }
                LevelScope::PerCore => {}
            }
        }
        if self.levels.last().unwrap().scope != LevelScope::PerDomain {
            return Err(HierarchyError::LastLevelPrivate);
        }
        Ok(())
    }

    /// The full-size A64FX: 48 cores in 4 CMGs, private 64 KiB 4-way L1D,
    /// shared 8 MiB 16-way L2 per CMG, 256 B lines, HBM2 at ~200 GB/s per
    /// CMG. Link numbers follow Alappat et al.'s ECM measurements: the
    /// L1↔L2 link moves a 256 B line in ~4 cycles (64 B/cy ≈ 140.8 GB/s
    /// per core at 2.2 GHz).
    pub fn a64fx() -> Self {
        let timing = TimingParams::a64fx();
        HierarchyConfig {
            name: "a64fx".to_string(),
            num_cores: 48,
            cores_per_domain: 12,
            levels: vec![
                LevelConfig::private(
                    CacheGeometry::new(64 << 10, 4, A64FX_LINE_BYTES),
                    64.0 * timing.clock_hz,
                    37.0 / timing.clock_hz,
                ),
                LevelConfig::shared(
                    CacheGeometry::new(8 << 20, 16, A64FX_LINE_BYTES),
                    timing.domain_bandwidth,
                    110.0e-9,
                ),
            ],
            replacement: Replacement::default(),
            prefetch: PrefetchConfig::a64fx(),
            timing,
            overlap: EcmOverlap::Serial,
        }
    }

    /// A generic three-level x86-style server socket: 8 cores on one
    /// memory domain, private 32 KiB 8-way L1D and 1 MiB 16-way L2,
    /// shared non-inclusive 32 MiB 16-way L3, 64 B lines, ~50 GB/s DDR.
    /// Deliberately round numbers — a what-if backend, not a die shot.
    pub fn generic_x86() -> Self {
        let clock = 3.0e9;
        HierarchyConfig {
            name: "generic-x86".to_string(),
            num_cores: 8,
            cores_per_domain: 8,
            levels: vec![
                LevelConfig::private(
                    CacheGeometry::new(32 << 10, 8, 64),
                    64.0 * clock,
                    12.0 / clock,
                ),
                LevelConfig::private(
                    CacheGeometry::new(1 << 20, 16, 64),
                    32.0 * clock,
                    40.0 / clock,
                ),
                LevelConfig::shared(CacheGeometry::new(32 << 20, 16, 64), 50.0e9, 90.0e-9),
            ],
            replacement: Replacement::Lru,
            prefetch: PrefetchConfig {
                enabled: true,
                l2_distance: 8,
                l1_distance: 2,
                streams: 16,
            },
            timing: TimingParams {
                clock_hz: clock,
                cycles_per_nnz: 0.8,
                domain_bandwidth: 50.0e9,
                demand_miss_cost: 90.0e-9 / 10.0,
                l1_refill_cost: 12.0 / 3.0e9 / 24.0,
            },
            overlap: EcmOverlap::Overlapped,
        }
    }

    /// Divides every level's capacity by `factor`, keeping way counts,
    /// line size and topology — the same ratio-preserving shrink as
    /// `MachineConfig::a64fx_scaled` (which delegates here). The L2
    /// prefetch distance shrinks linearly (floored at 2) so per-set
    /// pressure of in-flight prefetched lines is preserved.
    ///
    /// # Panics
    ///
    /// Panics if a scaled level would not have a whole number of sets.
    #[must_use]
    pub fn scaled(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        for level in &mut self.levels {
            level.geometry.size_bytes /= factor;
            let _ = level.geometry.num_sets();
        }
        self.prefetch.l2_distance = (self.prefetch.l2_distance / factor).max(2);
        self
    }

    /// Sets the core count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        self
    }
}

impl CacheHierarchy for HierarchyConfig {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn level(&self, i: usize) -> &LevelConfig {
        &self.levels[i]
    }

    fn line_bytes(&self) -> usize {
        self.levels[0].geometry.line_bytes
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn cores_per_domain(&self) -> usize {
        self.cores_per_domain
    }

    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.name);
        h.write(self.num_cores as u64);
        h.write(self.cores_per_domain as u64);
        h.write(self.levels.len() as u64);
        for level in &self.levels {
            h.write(level.geometry.size_bytes as u64);
            h.write(level.geometry.ways as u64);
            h.write(level.geometry.line_bytes as u64);
            h.write(level.sector.sector1_ways as u64);
            h.write(match level.scope {
                LevelScope::PerCore => 0,
                LevelScope::PerDomain => 1,
            });
            h.write(match level.inclusion {
                Inclusion::NonInclusive => 0,
                Inclusion::Inclusive => 1,
                Inclusion::Exclusive => 2,
            });
            h.write(level.link_bandwidth_bps.to_bits());
            h.write(level.link_latency_s.to_bits());
        }
        h.write(match self.replacement {
            Replacement::Lru => 0,
            Replacement::BitPlru => 1,
        });
        h.write(self.prefetch.enabled as u64);
        h.write(self.prefetch.l2_distance as u64);
        h.write(self.prefetch.l1_distance as u64);
        h.write(self.prefetch.streams as u64);
        h.write(self.timing.clock_hz.to_bits());
        h.write(self.timing.cycles_per_nnz.to_bits());
        h.write(self.timing.domain_bandwidth.to_bits());
        h.write(self.timing.demand_miss_cost.to_bits());
        h.write(self.timing.l1_refill_cost.to_bits());
        h.write(match self.overlap {
            EcmOverlap::Serial => 0,
            EcmOverlap::Overlapped => 1,
        });
        h.finish()
    }
}

/// FNV-1a over 8-byte words; deterministic across platforms and runs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.write(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_preset_validates_and_matches_paper_geometry() {
        let h = HierarchyConfig::a64fx();
        h.validate().expect("a64fx preset must validate");
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.line_bytes(), A64FX_LINE_BYTES);
        assert_eq!(h.level(0).geometry.num_sets(), 64);
        assert_eq!(h.level(1).geometry.num_sets(), 2048);
        assert_eq!(h.num_domains(), 4);
        assert_eq!(h.first_shared_level(), 1);
    }

    #[test]
    fn generic_x86_preset_validates() {
        let h = HierarchyConfig::generic_x86();
        h.validate().expect("generic-x86 preset must validate");
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.line_bytes(), 64);
        assert_eq!(h.first_shared_level(), 2);
        assert_eq!(h.num_domains(), 1);
    }

    #[test]
    fn scaled_divides_capacities_and_prefetch_distance() {
        let h = HierarchyConfig::a64fx().scaled(16);
        assert_eq!(h.level(0).geometry.size_bytes, 4 << 10);
        assert_eq!(h.level(1).geometry.size_bytes, 512 << 10);
        assert_eq!(h.level(1).geometry.ways, 16);
        assert_eq!(h.prefetch.l2_distance, 2);
        h.validate().unwrap();
    }

    #[test]
    fn validation_rejects_structural_problems() {
        let mut h = HierarchyConfig::a64fx();
        h.levels[0].geometry.ways = 0;
        assert_eq!(h.validate(), Err(HierarchyError::ZeroWays { level: 0 }));

        let mut h = HierarchyConfig::a64fx();
        h.levels[0].geometry.line_bytes = 96;
        assert!(matches!(
            h.validate(),
            Err(HierarchyError::LineNotPowerOfTwo { level: 0, .. })
        ));

        let mut h = HierarchyConfig::a64fx();
        h.levels[0].geometry.line_bytes = 128;
        assert!(matches!(
            h.validate(),
            Err(HierarchyError::MixedLineSize { .. })
        ));

        let mut h = HierarchyConfig::a64fx();
        h.levels[1].scope = LevelScope::PerCore;
        assert_eq!(h.validate(), Err(HierarchyError::LastLevelPrivate));

        let mut h = HierarchyConfig::generic_x86();
        h.levels.swap(1, 2);
        assert!(matches!(
            h.validate(),
            Err(HierarchyError::PrivateBelowShared { level: 2 })
        ));

        let mut h = HierarchyConfig::a64fx();
        h.levels[1].sector = SectorPolicy::ways(16);
        assert!(matches!(
            h.validate(),
            Err(HierarchyError::SectorTakesAllWays { level: 1, .. })
        ));

        let mut h = HierarchyConfig::a64fx();
        h.levels.clear();
        assert_eq!(h.validate(), Err(HierarchyError::NoLevels));
    }

    #[test]
    fn fingerprints_distinguish_presets_and_parameters() {
        let a = HierarchyConfig::a64fx();
        let x = HierarchyConfig::generic_x86();
        assert_ne!(a.fingerprint(), x.fingerprint());
        assert_eq!(a.fingerprint(), HierarchyConfig::a64fx().fingerprint());
        let scaled = HierarchyConfig::a64fx().scaled(4);
        assert_ne!(a.fingerprint(), scaled.fingerprint());
        let cores = HierarchyConfig::a64fx().with_cores(8);
        assert_ne!(a.fingerprint(), cores.fingerprint());
    }

    #[test]
    fn partition_lines_respects_sector_split() {
        let mut h = HierarchyConfig::a64fx();
        h.levels[1].sector = SectorPolicy::ways(5);
        assert_eq!(h.level(1).partition_lines(1), 2048 * 5);
        assert_eq!(h.level(1).partition_lines(0), 2048 * 11);
        assert_eq!(h.level(0).partition_lines(0), 256);
    }
}
