//! Per-level cache geometry and the shared policy/parameter types.
//!
//! These types used to live in `a64fx::config`; they moved here so every
//! machine model — A64FX or otherwise — describes itself with the same
//! vocabulary, and so the A64FX numbers exist in exactly one place
//! (`crate::presets`). `crates/a64fx` re-exports them, so existing
//! `a64fx::CacheGeometry` paths keep working.

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Builds a geometry from `(size, ways, line)`.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// whole sets).
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "cache size must be a whole number of sets"
        );
        assert_eq!(self.size_bytes % self.line_bytes, 0);
        lines / self.ways
    }

    /// Total capacity in cache lines.
    pub fn total_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Capacity in lines of a sector occupying `ways` of this cache's ways.
    pub fn sector_lines(&self, ways: usize) -> usize {
        self.num_sets() * ways
    }
}

/// Replacement policy used within each sector of a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used (what the paper's model assumes).
    Lru,
    /// Bit-PLRU (MRU bits): the pseudo-LRU approximation; the paper notes
    /// the A64FX's policy is undisclosed but assumed pseudo-LRU. This is
    /// the simulator default so the "measured" side carries a realistic
    /// model-vs-hardware gap.
    #[default]
    BitPlru,
}

/// Sector-cache configuration for one cache level.
///
/// Way-based partitioning as on the A64FX: `sector1_ways` ways are carved
/// out for sector 1 (the non-temporal data in the paper's usage) and the
/// remaining ways belong to sector 0. `sector1_ways == 0` means the sector
/// cache is disabled for this level (all data shares all ways).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SectorPolicy {
    /// Ways allocated to sector 1; 0 disables partitioning.
    pub sector1_ways: usize,
}

impl SectorPolicy {
    /// Partitioning disabled.
    pub const OFF: SectorPolicy = SectorPolicy { sector1_ways: 0 };

    /// Enables partitioning with the given sector-1 way count.
    pub fn ways(sector1_ways: usize) -> Self {
        SectorPolicy { sector1_ways }
    }

    /// Is partitioning active?
    pub fn enabled(&self) -> bool {
        self.sector1_ways > 0
    }
}

/// Hardware-prefetcher configuration (per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// How many lines ahead of the demand stream the L2 prefetcher runs.
    /// The A64FX hardware prefetch assistance allows adjusting this; the
    /// paper's §4.3 reduces it to show the small-sector eviction effect.
    pub l2_distance: usize,
    /// How many lines ahead the L1 prefetcher runs (0 disables L1
    /// prefetch fills).
    pub l1_distance: usize,
    /// Number of independent streams tracked per core.
    pub streams: usize,
}

impl PrefetchConfig {
    /// A64FX-like default: aggressive L2 streaming, 16 lines (4 KiB) ahead
    /// per stream.
    pub fn a64fx() -> Self {
        PrefetchConfig {
            enabled: true,
            l2_distance: 16,
            l1_distance: 2,
            streams: 8,
        }
    }

    /// Prefetching disabled.
    pub fn off() -> Self {
        PrefetchConfig {
            enabled: false,
            l2_distance: 0,
            l1_distance: 0,
            streams: 0,
        }
    }
}

/// Parameters of the analytic timing model (see `a64fx::timing`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingParams {
    /// Core clock in Hz (Wisteria FX1000 A64FX: 2.2 GHz).
    pub clock_hz: f64,
    /// Compute cost per nonzero in cycles (indexed CSR gather limits the
    /// SVE pipelines well below peak FMA throughput).
    pub cycles_per_nnz: f64,
    /// Sustainable memory bandwidth per NUMA domain in bytes/s
    /// (≈ 800 GB/s aggregate over 4 domains).
    pub domain_bandwidth: f64,
    /// Average latency cost of one L2 demand miss in seconds, after
    /// overlap by out-of-order execution / multiple outstanding misses.
    pub demand_miss_cost: f64,
    /// Average cost of one L1 refill (hit in L2) in seconds, after overlap.
    pub l1_refill_cost: f64,
}

impl TimingParams {
    /// Calibrated A64FX-like defaults.
    ///
    /// Calibration anchors (see EXPERIMENTS.md): the compute ceiling
    /// (2 flops / 1.2 cycles × 48 cores × 2.2 GHz ≈ 176 Gflop/s) sits above
    /// the 12-bytes-per-nonzero streaming bandwidth ceiling (~133 Gflop/s
    /// at 800 GB/s), making streaming SpMV memory-bound as on the real
    /// machine; the demand-miss cost (~110 ns HBM2 latency over ~6.5
    /// effective outstanding misses) pins the latency-bound irregular
    /// matrices near the paper's 5–10 Gflop/s.
    pub fn a64fx() -> Self {
        TimingParams {
            clock_hz: 2.2e9,
            cycles_per_nnz: 1.2,
            domain_bandwidth: 200.0e9,
            demand_miss_cost: 110.0e-9 / 6.5,
            // ~37 cycle L2 hit latency, heavily pipelined.
            l1_refill_cost: 37.0 / 2.2e9 / 24.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derived_quantities() {
        let g = CacheGeometry::new(8 << 20, 16, 256);
        assert_eq!(g.num_sets(), 2048);
        assert_eq!(g.total_lines(), 32768);
        assert_eq!(g.sector_lines(5), 2048 * 5);
    }

    #[test]
    fn sector_policy_enablement() {
        assert!(!SectorPolicy::OFF.enabled());
        assert!(SectorPolicy::ways(3).enabled());
        assert_eq!(SectorPolicy::default(), SectorPolicy::OFF);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_geometry_panics() {
        let g = CacheGeometry::new(64 * 5, 2, 64);
        let _ = g.num_sets();
    }
}
