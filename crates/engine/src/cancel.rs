//! Cooperative cancellation for long-running batch work.
//!
//! The engine has no preemption: a profile computation runs until it
//! finishes. What a service boundary needs instead is *cooperative*
//! cancellation — a cheap token the job runner polls at its natural
//! checkpoints (before each job, before each per-domain trace analysis)
//! so an abandoned or over-deadline request stops burning cores within
//! one domain's worth of work rather than one batch's worth.
//!
//! A [`CancelToken`] trips for one of two reasons, and the reason is
//! preserved so callers can answer with the right typed error:
//!
//! * an explicit [`cancel`](CancelToken::cancel) (service shutdown, client
//!   disconnect) — [`Cancelled::Shutdown`];
//! * a wall-clock deadline fixed at token creation —
//!   [`Cancelled::DeadlineExceeded`]. Deadlines are absolute, so queue
//!   wait counts against the budget: a request that sat in an overloaded
//!   queue past its deadline is cancelled at its first checkpoint without
//!   computing anything.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a batch run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cancelled {
    /// [`CancelToken::cancel`] was called (shutdown, client gone).
    Shutdown,
    /// The token's deadline passed before the work finished.
    DeadlineExceeded,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cancelled::Shutdown => write!(f, "cancelled"),
            Cancelled::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute cutoff; `None` = no deadline.
    deadline: Option<Instant>,
}

/// A cloneable, thread-safe cancellation flag with an optional absolute
/// deadline. Cloning shares the flag: cancelling any clone cancels all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never trips on its own (explicit [`cancel`] only).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn never() -> Self {
        Self::default()
    }

    /// A token whose deadline is `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// A token whose deadline is `ms` milliseconds from now.
    pub fn with_deadline_ms(ms: u64) -> Self {
        Self::with_deadline(Duration::from_millis(ms))
    }

    /// Trips the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Returns why the token has tripped, or `None` if work may continue.
    /// Explicit cancellation wins over an expired deadline when both hold.
    pub fn cancelled(&self) -> Option<Cancelled> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(Cancelled::Shutdown);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(Cancelled::DeadlineExceeded),
            _ => None,
        }
    }

    /// `true` once the token has tripped (either reason).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_stays_live_until_cancelled() {
        let t = CancelToken::never();
        assert_eq!(t.cancelled(), None);
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.cancelled(), Some(Cancelled::Shutdown));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        // May or may not have tripped yet; after sleeping past the budget
        // it must have.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(t.cancelled(), Some(Cancelled::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        t.cancel();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(t.cancelled(), Some(Cancelled::Shutdown));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = CancelToken::with_deadline_ms(60_000);
        assert_eq!(t.cancelled(), None);
    }
}
