//! Batch specifications: what to predict, for which matrices, under which
//! sweep — plus the line-based on-disk spec format of `spmv-locality batch`.

use locality_core::{FormatSpec, Method, ReorderSpec, RhsLayout, ScenarioSpec, SectorSetting};
use machine::MachineSpec;
use std::fmt;
use std::path::PathBuf;

/// Where a job's matrix comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatrixSource {
    /// `count` synthetic corpus matrices (the §4.1 population) at
    /// `1/scale` size from `seed`.
    Corpus {
        /// Number of matrices to generate.
        count: usize,
        /// Size divisor (matches the machine scale).
        scale: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The 18 Table 1 analogues at `1/scale` size.
    Table1 {
        /// Size divisor.
        scale: usize,
    },
    /// A MatrixMarket file on disk.
    MtxFile(PathBuf),
}

/// A full batch: the cross product of matrices × methods × settings.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSpec {
    /// Matrix sources, resolved in order.
    pub sources: Vec<MatrixSource>,
    /// Model variants to run per matrix.
    pub methods: Vec<Method>,
    /// Sector settings to evaluate per matrix and method.
    pub settings: Vec<SectorSetting>,
    /// Modeled SpMV thread count.
    pub threads: usize,
    /// Machine scale divisor (1 = full A64FX).
    pub scale: usize,
    /// Engine worker threads (0 = all host cores).
    pub workers: usize,
    /// Storage format the resolved matrices are converted to.
    pub format: FormatSpec,
    /// Row reordering applied before format conversion.
    pub reorder: ReorderSpec,
    /// Kernel scenario traced on top of the storage format: plain SpMV
    /// (default), `k`-RHS SpMM, or a CG iteration.
    pub scenario: ScenarioSpec,
    /// Machines to sweep the batch over (`machine` directives accumulate,
    /// like sources). Empty means the default `a64fx`, whose reports stay
    /// byte-identical to the pre-machine-dimension output.
    pub machines: Vec<MachineSpec>,
    /// Attach an ECM throughput estimate (`"ecm":{...}`) to every report.
    /// Off by default — the field's absence keeps legacy bytes.
    pub ecm: bool,
    /// Wall-clock budget for the whole batch, in milliseconds. `None`
    /// (default) runs to completion; with a deadline the run is
    /// cooperatively cancelled at its next checkpoint once the budget
    /// expires and reports a typed deadline error instead of a partial
    /// result. The serve daemon reuses this machinery per request.
    pub deadline_ms: Option<u64>,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec {
            sources: Vec::new(),
            methods: vec![Method::A, Method::B],
            settings: SectorSetting::paper_sweep(),
            threads: 1,
            scale: 16,
            workers: 0,
            format: FormatSpec::Csr,
            reorder: ReorderSpec::None,
            scenario: ScenarioSpec::Spmv,
            machines: Vec::new(),
            ecm: false,
            deadline_ms: None,
        }
    }
}

/// A malformed batch spec, with the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec text.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

/// Parses `key=value` pairs, all keys optional.
fn parse_kv<'a>(
    line: usize,
    parts: impl Iterator<Item = &'a str>,
    allowed: &[&str],
) -> Result<Vec<(&'a str, u64)>, SpecError> {
    let mut out = Vec::new();
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected key=value, got '{part}'")))?;
        if !allowed.contains(&key) {
            return Err(err(
                line,
                format!("unknown key '{key}' (expected {})", allowed.join("/")),
            ));
        }
        let value: u64 = value
            .parse()
            .map_err(|_| err(line, format!("'{value}' is not a number (for {key})")))?;
        out.push((key, value));
    }
    Ok(out)
}

impl BatchSpec {
    /// Parses the line-based spec format:
    ///
    /// ```text
    /// # comment
    /// corpus count=20 scale=16 seed=2023   # synthetic §4.1 corpus
    /// table1 scale=16                      # the 18 Table 1 analogues
    /// mtx path/to/matrix.mtx               # a MatrixMarket file
    /// methods A,B                          # default: A,B
    /// settings off,2..7                    # or "paper" or "off,3,5"
    /// threads 1                            # modeled SpMV threads
    /// scale 16                             # machine scale divisor
    /// workers 0                            # engine threads (0 = all cores)
    /// format sell:32,128                   # csr (default) or sell:C,sigma
    /// reorder rcm                          # none (default) or rcm
    /// rhs 16 col                           # SpMM right-hand sides (layout: row)
    /// workload cg                          # spmv (default), cg or spmm:K[,row|col]
    /// machine generic-x86                  # machines accumulate (default: a64fx)
    /// ecm on                               # attach ECM Gflop/s to every report
    /// deadline_ms 5000                     # whole-batch budget (default: none)
    /// ```
    ///
    /// Directives may appear in any order; matrix sources accumulate,
    /// scalar directives overwrite. At least one source is required.
    pub fn parse(text: &str) -> Result<BatchSpec, SpecError> {
        let mut spec = BatchSpec::default();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().expect("non-empty line");
            match directive {
                "corpus" => {
                    let (mut count, mut scale, mut seed) = (20, spec.scale as u64, 2023);
                    for (k, v) in parse_kv(line_no, &mut words, &["count", "scale", "seed"])? {
                        match k {
                            "count" => count = v as usize,
                            "scale" => scale = v,
                            _ => seed = v,
                        }
                    }
                    if count == 0 {
                        return Err(err(line_no, "corpus count must be at least 1"));
                    }
                    spec.sources.push(MatrixSource::Corpus {
                        count,
                        scale: scale as usize,
                        seed,
                    });
                }
                "table1" => {
                    let mut scale = spec.scale as u64;
                    for (_, v) in parse_kv(line_no, &mut words, &["scale"])? {
                        scale = v;
                    }
                    spec.sources.push(MatrixSource::Table1 {
                        scale: scale as usize,
                    });
                }
                "mtx" => {
                    // The path is the rest of the line (it may contain
                    // spaces), so consume the word iterator wholesale.
                    words.by_ref().for_each(drop);
                    let path = line["mtx".len()..].trim();
                    if path.is_empty() {
                        return Err(err(line_no, "mtx needs a file path"));
                    }
                    spec.sources
                        .push(MatrixSource::MtxFile(PathBuf::from(path)));
                }
                "methods" => {
                    let arg = words
                        .next()
                        .ok_or_else(|| err(line_no, "methods needs A, B or A,B"))?;
                    spec.methods = arg
                        .split(',')
                        .map(|m| match m.trim() {
                            "A" | "a" => Ok(Method::A),
                            "B" | "b" => Ok(Method::B),
                            "both" => Err(err(line_no, "write 'methods A,B' instead of 'both'")),
                            other => Err(err(line_no, format!("unknown method '{other}'"))),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "settings" => {
                    let arg = words
                        .next()
                        .ok_or_else(|| err(line_no, "settings needs off,2..7 / paper / a list"))?;
                    spec.settings = parse_settings(line_no, arg)?;
                }
                "format" => {
                    let arg = words
                        .next()
                        .ok_or_else(|| err(line_no, "format needs csr or sell:C,sigma"))?;
                    spec.format = FormatSpec::parse(arg).map_err(|e| err(line_no, e))?;
                }
                "reorder" => {
                    let arg = words
                        .next()
                        .ok_or_else(|| err(line_no, "reorder needs none or rcm"))?;
                    spec.reorder = ReorderSpec::parse(arg).map_err(|e| err(line_no, e))?;
                }
                "rhs" => {
                    let k: usize = words
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line_no, "rhs needs a positive RHS count"))?;
                    if k == 0 {
                        return Err(err(line_no, "rhs must be at least 1"));
                    }
                    let layout = match words.next() {
                        Some(arg) => RhsLayout::parse(arg).map_err(|e| err(line_no, e))?,
                        None => RhsLayout::default(),
                    };
                    spec.scenario = ScenarioSpec::Spmm { k, layout };
                }
                "workload" => {
                    let arg = words.next().ok_or_else(|| {
                        err(line_no, "workload needs spmv, cg or spmm:K[,row|col]")
                    })?;
                    spec.scenario = ScenarioSpec::parse(arg).map_err(|e| err(line_no, e))?;
                }
                "machine" => {
                    let arg = words.next().ok_or_else(|| {
                        err(line_no, "machine needs a64fx, generic-x86 or custom:<spec>")
                    })?;
                    let parsed =
                        MachineSpec::parse(arg).map_err(|e| err(line_no, e.to_string()))?;
                    if spec.machines.contains(&parsed) {
                        return Err(err(line_no, format!("machine '{arg}' given twice")));
                    }
                    spec.machines.push(parsed);
                }
                "ecm" => {
                    let arg = words
                        .next()
                        .ok_or_else(|| err(line_no, "ecm needs on or off"))?;
                    spec.ecm = match arg {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(err(line_no, format!("ecm needs on or off, got '{other}'")))
                        }
                    };
                }
                "threads" | "scale" | "workers" | "deadline_ms" => {
                    let arg = words
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| err(line_no, format!("{directive} needs a number")))?;
                    match directive {
                        "threads" => {
                            if arg == 0 {
                                return Err(err(line_no, "threads must be at least 1"));
                            }
                            spec.threads = arg as usize;
                        }
                        "scale" => {
                            if arg == 0 {
                                return Err(err(line_no, "scale must be at least 1"));
                            }
                            spec.scale = arg as usize;
                        }
                        "deadline_ms" => {
                            if arg == 0 {
                                return Err(err(line_no, "deadline_ms must be at least 1"));
                            }
                            spec.deadline_ms = Some(arg);
                        }
                        _ => spec.workers = arg as usize,
                    }
                }
                other => {
                    return Err(err(
                        line_no,
                        format!(
                            "unknown directive '{other}' (expected corpus/table1/mtx/methods/settings/threads/scale/workers/format/reorder/rhs/workload/machine/ecm/deadline_ms)"
                        ),
                    ));
                }
            }
            if let Some(extra) = words.next() {
                return Err(err(line_no, format!("unexpected trailing '{extra}'")));
            }
        }
        if spec.sources.is_empty() {
            return Err(err(
                0,
                "spec names no matrices (add corpus/table1/mtx lines)",
            ));
        }
        Ok(spec)
    }

    /// Total jobs this spec expands to per resolved matrix.
    pub fn jobs_per_matrix(&self) -> usize {
        self.num_machines() * self.methods.len() * self.settings.len()
    }

    /// Machines the batch sweeps (1 for the implicit `a64fx` default).
    pub fn num_machines(&self) -> usize {
        self.machines.len().max(1)
    }
}

/// Parses a settings list: `paper`, or comma-separated items where each
/// item is `off`, a way count `w`, or a way range `lo..hi` (inclusive).
fn parse_settings(line: usize, arg: &str) -> Result<Vec<SectorSetting>, SpecError> {
    if arg == "paper" {
        return Ok(SectorSetting::paper_sweep());
    }
    let mut out = Vec::new();
    for item in arg.split(',') {
        let item = item.trim();
        if item.eq_ignore_ascii_case("off") {
            out.push(SectorSetting::Off);
        } else if let Some((lo, hi)) = item.split_once("..") {
            let lo: usize = lo
                .parse()
                .map_err(|_| err(line, format!("bad range start '{lo}'")))?;
            let hi: usize = hi
                .parse()
                .map_err(|_| err(line, format!("bad range end '{hi}'")))?;
            if lo == 0 || hi < lo {
                return Err(err(line, format!("bad way range '{item}'")));
            }
            out.extend((lo..=hi).map(SectorSetting::L2Ways));
        } else {
            let w: usize = item
                .parse()
                .map_err(|_| err(line, format!("bad setting '{item}'")))?;
            if w == 0 {
                return Err(err(line, "0 ways means off — write 'off'"));
            }
            out.push(SectorSetting::L2Ways(w));
        }
    }
    if out.is_empty() {
        return Err(err(line, "empty settings list"));
    }
    Ok(out)
}

/// One unit of work: one matrix, one method, one sector setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Position in the batch (stable output order).
    pub id: usize,
    /// Index into the resolved matrix list.
    pub matrix: usize,
    /// Index into the resolved machine list.
    pub machine: usize,
    /// Model variant.
    pub method: Method,
    /// Sector setting to evaluate.
    pub setting: SectorSetting,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let spec = BatchSpec::parse(
            "# demo\n\
             corpus count=20 scale=32 seed=7\n\
             table1 scale=32\n\
             mtx data/a file.mtx\n\
             methods A,B\n\
             settings off,2..7\n\
             threads 4\n\
             scale 32   # trailing comment\n\
             workers 8\n",
        )
        .unwrap();
        assert_eq!(spec.sources.len(), 3);
        assert_eq!(
            spec.sources[0],
            MatrixSource::Corpus {
                count: 20,
                scale: 32,
                seed: 7
            }
        );
        assert_eq!(spec.sources[1], MatrixSource::Table1 { scale: 32 });
        assert_eq!(
            spec.sources[2],
            MatrixSource::MtxFile(PathBuf::from("data/a file.mtx"))
        );
        assert_eq!(spec.methods, vec![Method::A, Method::B]);
        assert_eq!(spec.settings, SectorSetting::paper_sweep());
        assert_eq!((spec.threads, spec.scale, spec.workers), (4, 32, 8));
        assert_eq!(spec.jobs_per_matrix(), 14);
    }

    #[test]
    fn settings_forms() {
        let s = |arg: &str| parse_settings(1, arg).unwrap();
        assert_eq!(s("paper"), SectorSetting::paper_sweep());
        assert_eq!(s("off"), vec![SectorSetting::Off]);
        assert_eq!(
            s("off,3,5"),
            vec![
                SectorSetting::Off,
                SectorSetting::L2Ways(3),
                SectorSetting::L2Ways(5)
            ]
        );
        assert_eq!(s("2..4").len(), 3);
        assert!(parse_settings(1, "0").is_err());
        assert!(parse_settings(1, "5..2").is_err());
        assert!(parse_settings(1, "banana").is_err());
    }

    #[test]
    fn parses_format_and_reorder() {
        let spec = BatchSpec::parse(
            "corpus count=2\n\
             format sell:32,128\n\
             reorder rcm\n",
        )
        .unwrap();
        assert_eq!(
            spec.format,
            FormatSpec::Sell {
                chunk_size: 32,
                sigma: 128
            }
        );
        assert_eq!(spec.reorder, ReorderSpec::Rcm);
        assert!(BatchSpec::parse("corpus count=1\nformat sell\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nformat\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nreorder sorted\n").is_err());
    }

    #[test]
    fn parses_rhs_and_workload() {
        let spec = BatchSpec::parse("corpus count=1\nrhs 16\n").unwrap();
        assert_eq!(
            spec.scenario,
            ScenarioSpec::Spmm {
                k: 16,
                layout: RhsLayout::Interleaved
            }
        );
        let spec = BatchSpec::parse("corpus count=1\nrhs 4 col\n").unwrap();
        assert_eq!(
            spec.scenario,
            ScenarioSpec::Spmm {
                k: 4,
                layout: RhsLayout::Separate
            }
        );
        let spec = BatchSpec::parse("corpus count=1\nworkload cg\n").unwrap();
        assert_eq!(spec.scenario, ScenarioSpec::Cg);
        let spec = BatchSpec::parse("corpus count=1\nworkload spmm:8,col\n").unwrap();
        assert_eq!(
            spec.scenario,
            ScenarioSpec::Spmm {
                k: 8,
                layout: RhsLayout::Separate
            }
        );
        // `workload spmv` resets an earlier rhs directive (last one wins).
        let spec = BatchSpec::parse("corpus count=1\nrhs 4\nworkload spmv\n").unwrap();
        assert_eq!(spec.scenario, ScenarioSpec::Spmv);
        assert!(BatchSpec::parse("corpus count=1\nrhs 0\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nrhs\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nrhs 4 diag\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nrhs 4 col extra\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nworkload spmm\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nworkload lu\n").is_err());
    }

    #[test]
    fn parses_machines_and_ecm() {
        let spec = BatchSpec::parse(
            "corpus count=1\n\
             machine a64fx\n\
             machine generic-x86\n\
             machine custom:cores=2;l1=8k,4,64;l2=256k,8,64;mem=40g\n\
             ecm on\n",
        )
        .unwrap();
        assert_eq!(spec.machines.len(), 3);
        assert_eq!(spec.machines[0], MachineSpec::A64fx);
        assert_eq!(spec.machines[1], MachineSpec::GenericX86);
        assert!(matches!(spec.machines[2], MachineSpec::Custom(_)));
        assert!(spec.ecm);
        assert_eq!(spec.num_machines(), 3);
        assert_eq!(spec.jobs_per_matrix(), 3 * 2 * 7);

        // No machine directive: the implicit a64fx default.
        let spec = BatchSpec::parse("corpus count=1\n").unwrap();
        assert!(spec.machines.is_empty());
        assert!(!spec.ecm);
        assert_eq!(spec.num_machines(), 1);

        let off = BatchSpec::parse("corpus count=1\necm on\necm off\n").unwrap();
        assert!(!off.ecm);

        assert!(BatchSpec::parse("corpus count=1\nmachine sparc\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\nmachine\n").is_err());
        assert!(
            BatchSpec::parse("corpus count=1\nmachine a64fx\nmachine a64fx\n").is_err(),
            "duplicate machine"
        );
        assert!(BatchSpec::parse("corpus count=1\necm yes\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\necm\n").is_err());
        // Parse errors surface the machine crate's pointed message.
        let err = BatchSpec::parse("corpus count=1\nmachine custom:l1=32k,0,64;l2=1m,16,64\n")
            .unwrap_err();
        assert!(err.message.contains("zero ways"), "{err}");
    }

    #[test]
    fn parses_deadline_ms() {
        let spec = BatchSpec::parse("corpus count=1\ndeadline_ms 2500\n").unwrap();
        assert_eq!(spec.deadline_ms, Some(2500));
        assert!(BatchSpec::parse("corpus count=1\ndeadline_ms 0\n").is_err());
        assert!(BatchSpec::parse("corpus count=1\ndeadline_ms soon\n").is_err());
    }

    #[test]
    fn defaults_apply() {
        let spec = BatchSpec::parse("corpus count=5\n").unwrap();
        assert_eq!(spec.methods, vec![Method::A, Method::B]);
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(spec.settings.len(), 7);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.format, FormatSpec::Csr);
        assert_eq!(spec.reorder, ReorderSpec::None);
        // Source without explicit scale inherits the spec default.
        assert_eq!(
            spec.sources[0],
            MatrixSource::Corpus {
                count: 5,
                scale: 16,
                seed: 2023
            }
        );
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(BatchSpec::parse("").is_err(), "no sources");
        assert!(BatchSpec::parse("corpus count=banana\n").is_err());
        assert!(BatchSpec::parse("warp 9\n").is_err(), "unknown directive");
        assert!(
            BatchSpec::parse("corpus count=1 speed=3\n").is_err(),
            "unknown key"
        );
        assert!(
            BatchSpec::parse("mtx\ncorpus count=1\n").is_err(),
            "mtx without path"
        );
        assert!(BatchSpec::parse("threads 0\ncorpus count=1\n").is_err());
        assert!(BatchSpec::parse("methods C\ncorpus count=1\n").is_err());
        assert!(
            BatchSpec::parse("threads 1 2\ncorpus count=1\n").is_err(),
            "trailing word"
        );
    }
}
