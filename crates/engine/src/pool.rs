//! A work-stealing worker pool on plain `std::thread` — the build
//! environment has no third-party crates, so there is no rayon or
//! crossbeam to lean on.
//!
//! Each worker owns a deque of job indices; it pops from the front of its
//! own deque and, when empty, steals from the *back* of a sibling's (the
//! classic split that keeps contention low and gives thieves the work the
//! owner would reach last). Jobs are dealt round-robin up front, so with
//! uniform costs nobody steals at all and with skewed costs (one huge
//! matrix among small ones) idle workers drain the loaded deque.
//!
//! Results are returned in job order regardless of which worker ran what —
//! batch output must be byte-identical for any worker count.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The thread count a `workers` request resolves to: `0` means one per
/// host core. Callers sizing work *for* the pool (e.g. the capacity-shard
/// heuristic) use this to see the same parallelism `run_indexed` will.
pub fn resolved_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    }
}

/// Runs `run(i, &items[i])` for every item on `workers` threads and
/// returns the results in item order.
///
/// `workers == 0` means one per host core. Panics in `run` propagate.
pub fn run_indexed<T, R, F>(workers: usize, items: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolved_workers(workers).min(items.len().max(1));

    obs::gauge_max("engine.pool.workers", workers as u64);

    // One worker means no parallelism to buy: run inline on the calling
    // thread instead of paying a thread spawn plus mutexed deques for a
    // serial traversal. On a single-core host this is what makes the
    // "parallel" engine path cost the same as the serial one.
    if workers == 1 {
        // A spawned worker's span opens on a fresh thread stack, so it is
        // a root in the aggregated tree; open the inline one as a root
        // too, keeping the span tree invariant under worker count.
        let span = obs::span_root("pool.worker");
        if obs::enabled() {
            obs::add("engine.pool.jobs", items.len() as u64);
            obs::observe("engine.pool.jobs_per_worker", items.len() as u64);
        }
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| run(i, item))
            .collect();
        drop(span);
        return out;
    }

    // Deal round-robin: worker w starts with jobs w, w+workers, ...
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();

    let results = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let results = &results;
            let run = &run;
            scope.spawn(move || {
                let span = obs::span("pool.worker");
                let mut local = Vec::new();
                let mut stolen = 0u64;
                loop {
                    // Own deque first (front), then steal from the back of
                    // the first sibling that still has work. No deque is
                    // ever refilled, so finding all of them empty is a
                    // sound termination condition (no len-then-pop race:
                    // the pop itself is the check).
                    let job = (0..workers).map(|k| (w + k) % workers).find_map(|v| {
                        let mut deque = deques[v].lock().expect("deque poisoned");
                        let popped = if v == w {
                            deque.pop_front()
                        } else {
                            deque.pop_back()
                        };
                        if popped.is_some() && v != w {
                            stolen += 1;
                        }
                        popped
                    });
                    match job {
                        Some(i) => local.push((i, run(i, &items[i]))),
                        None => break,
                    }
                }
                if obs::enabled() {
                    obs::add("engine.pool.jobs", local.len() as u64);
                    obs::add("engine.pool.steals", stolen);
                    obs::observe("engine.pool.jobs_per_worker", local.len() as u64);
                }
                results.lock().expect("results poisoned").append(&mut local);
                // Drain this worker's collector before the scope observes
                // completion — `thread::scope` can return before TLS
                // destructors run, and telemetry promises "drained at join".
                drop(span);
                obs::flush_thread();
            });
        }
    });

    let mut collected = results.into_inner().expect("results poisoned");
    collected.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(collected.len(), items.len());
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..57).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(
                run_indexed(workers, &items, |_, &x| x * x),
                expect,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, &(0..40).collect::<Vec<_>>(), |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn skewed_costs_get_stolen() {
        // One slow job at the head of worker 0's deque: the other jobs
        // must still all complete (stolen or not) and order must hold.
        let items: Vec<u64> = (0..16).map(|i| if i == 0 { 30 } else { 1 }).collect();
        let out = run_indexed(4, &items, |i, &ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(run_indexed(4, &Vec::<u8>::new(), |_, &b| b).is_empty());
        assert_eq!(run_indexed(0, &[7u8], |_, &b| b), vec![7]);
    }
}
