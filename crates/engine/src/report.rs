//! Batch results and their JSON-lines serialization.
//!
//! No serde in the offline build environment, so the (flat, fixed-schema)
//! records are written by hand. Field order is fixed and no timestamps or
//! durations are recorded, keeping the output byte-identical across runs
//! and worker counts.

use crate::job::Job;
use locality_core::{Method, Prediction, SectorSetting};
use memtrace::Array;
use std::fmt::Write as _;

/// An ECM-style throughput estimate attached to a report (see the
/// `machine` crate's `ecm` module for the composition rules). Times are
/// per measured iteration, on the critical-path core/domain.
#[derive(Clone, Debug, PartialEq)]
pub struct EcmSummary {
    /// Predicted throughput in Gflop/s.
    pub gflops: f64,
    /// Composed total runtime in seconds.
    pub t_total_s: f64,
    /// In-core execution seconds.
    pub t_core_s: f64,
    /// Per-link transfer seconds, innermost first, labelled (`"l1-l2"`,
    /// ..., `"mem"`).
    pub links: Vec<(String, f64)>,
    /// Largest single contribution: `"core"`, a link label, or `"mem"`.
    pub bottleneck: String,
}

/// The outcome of one [`Job`].
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Batch position (output order).
    pub id: usize,
    /// Matrix display name.
    pub matrix: String,
    /// Structural fingerprint of the matrix.
    pub fingerprint: u64,
    /// Matrix shape.
    pub rows: usize,
    /// Matrix shape.
    pub cols: usize,
    /// Nonzero count.
    pub nnz: usize,
    /// Model variant used.
    pub method: Method,
    /// Sector setting evaluated.
    pub setting: SectorSetting,
    /// Modeled SpMV thread count.
    pub threads: usize,
    /// The prediction itself.
    pub prediction: Prediction,
    /// Machine label for non-default machines (`None` on the a64fx
    /// default, keeping legacy report bytes).
    pub machine: Option<String>,
    /// ECM throughput estimate, when the spec asked for one.
    pub ecm: Option<EcmSummary>,
}

/// Whole-batch accounting, emitted as the final JSON line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Matrices resolved from the spec's sources.
    pub matrices: usize,
    /// Jobs run (matrices × methods × settings).
    pub jobs: usize,
    /// Profiles actually computed (distinct cache keys).
    pub profile_computations: u64,
    /// Jobs served from the profile cache.
    pub profile_hits: u64,
}

/// A finished batch: per-job reports in job order, plus cache accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResult {
    /// One report per job, sorted by job id.
    pub reports: Vec<Report>,
    /// Cache and size accounting.
    pub stats: BatchStats,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn setting_json(setting: SectorSetting) -> String {
    match setting {
        SectorSetting::Off => "\"off\"".to_string(),
        SectorSetting::L2Ways(w) => w.to_string(),
    }
}

impl Report {
    /// One JSON object on one line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"job\":{},\"matrix\":\"", self.id);
        json_escape(&mut out, &self.matrix);
        let _ = write!(
            out,
            "\",\"fingerprint\":\"{:016x}\",\"rows\":{},\"cols\":{},\"nnz\":{},\
             \"method\":\"{:?}\",\"setting\":{},\"threads\":{},\"l2_misses\":{}",
            self.fingerprint,
            self.rows,
            self.cols,
            self.nnz,
            self.method,
            setting_json(self.setting),
            self.threads,
            self.prediction.l2_misses,
        );
        out.push_str(",\"by_array\":{");
        for (i, (array, label)) in Array::ALL
            .iter()
            .zip(["x", "y", "a", "colidx", "rowptr"])
            .enumerate()
        {
            let _ = write!(
                out,
                "{}\"{label}\":{}",
                if i == 0 { "" } else { "," },
                self.prediction.misses_of(*array)
            );
        }
        out.push('}');
        // Optional fields come last so default (a64fx, no-ECM) reports
        // keep their historical bytes exactly.
        if let Some(machine) = &self.machine {
            out.push_str(",\"machine\":\"");
            json_escape(&mut out, machine);
            out.push('"');
        }
        if let Some(ecm) = &self.ecm {
            let _ = write!(
                out,
                ",\"ecm\":{{\"gflops\":{},\"t_total_s\":{},\"t_core_s\":{},\"links\":{{",
                fmt_f64(ecm.gflops),
                fmt_f64(ecm.t_total_s),
                fmt_f64(ecm.t_core_s),
            );
            for (i, (label, seconds)) in ecm.links.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{label}\":{}",
                    if i == 0 { "" } else { "," },
                    fmt_f64(*seconds)
                );
            }
            let _ = write!(out, "}},\"bottleneck\":\"{}\"}}", ecm.bottleneck);
        }
        out.push('}');
        out
    }
}

/// Deterministic JSON number for an ECM quantity: four significant
/// digits in scientific notation — stable across platforms, precise
/// enough for a model whose inputs are themselves estimates.
fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    format!("{v:.3e}")
}

impl BatchStats {
    /// The final summary line of a batch's JSON-lines output.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"summary\":{{\"matrices\":{},\"jobs\":{},\"profile_computations\":{},\
             \"profile_hits\":{}}}}}",
            self.matrices, self.jobs, self.profile_computations, self.profile_hits
        )
    }
}

impl BatchResult {
    /// The full JSON-lines document: one line per job, then the summary.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out.push_str(&self.stats.to_json_line());
        out.push('\n');
        out
    }
}

/// Builds a report from a finished job (helper for the engine).
#[allow(clippy::too_many_arguments)]
pub(crate) fn report_for(
    job: &Job,
    name: &str,
    fingerprint: u64,
    shape: (usize, usize, usize),
    threads: usize,
    prediction: Prediction,
    machine: Option<String>,
    ecm: Option<EcmSummary>,
) -> Report {
    Report {
        id: job.id,
        matrix: name.to_string(),
        fingerprint,
        rows: shape.0,
        cols: shape.1,
        nnz: shape.2,
        method: job.method,
        setting: job.setting,
        threads,
        prediction,
        machine,
        ecm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            id: 3,
            matrix: "band \"w\"=2".to_string(),
            fingerprint: 0xDEAD_BEEF,
            rows: 10,
            cols: 11,
            nnz: 12,
            method: Method::A,
            setting: SectorSetting::L2Ways(5),
            threads: 4,
            prediction: Prediction {
                setting: SectorSetting::L2Ways(5),
                l2_misses: 15,
                by_array: [1, 2, 3, 4, 5],
            },
            machine: None,
            ecm: None,
        }
    }

    #[test]
    fn report_json_schema() {
        let line = sample().to_json_line();
        assert_eq!(
            line,
            "{\"job\":3,\"matrix\":\"band \\\"w\\\"=2\",\
             \"fingerprint\":\"00000000deadbeef\",\"rows\":10,\"cols\":11,\"nnz\":12,\
             \"method\":\"A\",\"setting\":5,\"threads\":4,\"l2_misses\":15,\
             \"by_array\":{\"x\":1,\"y\":2,\"a\":3,\"colidx\":4,\"rowptr\":5}}"
        );
    }

    #[test]
    fn off_setting_is_a_string() {
        let mut r = sample();
        r.setting = SectorSetting::Off;
        assert!(r.to_json_line().contains("\"setting\":\"off\""));
    }

    #[test]
    fn machine_and_ecm_fields_append_after_by_array() {
        let mut r = sample();
        r.machine = Some("generic-x86".to_string());
        r.ecm = Some(EcmSummary {
            gflops: 12.5,
            t_total_s: 1.6e-4,
            t_core_s: 4.0e-5,
            links: vec![("l1-l2".to_string(), 2.0e-5), ("mem".to_string(), 1.0e-4)],
            bottleneck: "mem".to_string(),
        });
        let line = r.to_json_line();
        assert!(
            line.contains("\"rowptr\":5},\"machine\":\"generic-x86\",\"ecm\":{"),
            "{line}"
        );
        assert!(
            line.ends_with(
                "\"ecm\":{\"gflops\":1.250e1,\"t_total_s\":1.600e-4,\"t_core_s\":4.000e-5,\
                 \"links\":{\"l1-l2\":2.000e-5,\"mem\":1.000e-4},\"bottleneck\":\"mem\"}}"
            ),
            "{line}"
        );
        // Default reports keep the legacy shape: no machine, no ecm.
        let legacy = sample().to_json_line();
        assert!(!legacy.contains("machine"));
        assert!(!legacy.contains("ecm"));
    }

    #[test]
    fn ecm_floats_are_deterministic_json_numbers() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12.5), "1.250e1");
        assert_eq!(fmt_f64(1.0 / 3.0e9), "3.333e-10");
    }

    #[test]
    fn summary_line() {
        let stats = BatchStats {
            matrices: 20,
            jobs: 140,
            profile_computations: 20,
            profile_hits: 120,
        };
        assert_eq!(
            stats.to_json_line(),
            "{\"summary\":{\"matrices\":20,\"jobs\":140,\
             \"profile_computations\":20,\"profile_hits\":120}}"
        );
    }
}
