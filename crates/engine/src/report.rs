//! Batch results and their JSON-lines serialization.
//!
//! No serde in the offline build environment, so the (flat, fixed-schema)
//! records are written by hand. Field order is fixed and no timestamps or
//! durations are recorded, keeping the output byte-identical across runs
//! and worker counts.

use crate::job::Job;
use locality_core::{Method, Prediction, SectorSetting};
use memtrace::Array;
use std::fmt::Write as _;

/// The outcome of one [`Job`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Batch position (output order).
    pub id: usize,
    /// Matrix display name.
    pub matrix: String,
    /// Structural fingerprint of the matrix.
    pub fingerprint: u64,
    /// Matrix shape.
    pub rows: usize,
    /// Matrix shape.
    pub cols: usize,
    /// Nonzero count.
    pub nnz: usize,
    /// Model variant used.
    pub method: Method,
    /// Sector setting evaluated.
    pub setting: SectorSetting,
    /// Modeled SpMV thread count.
    pub threads: usize,
    /// The prediction itself.
    pub prediction: Prediction,
}

/// Whole-batch accounting, emitted as the final JSON line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Matrices resolved from the spec's sources.
    pub matrices: usize,
    /// Jobs run (matrices × methods × settings).
    pub jobs: usize,
    /// Profiles actually computed (distinct cache keys).
    pub profile_computations: u64,
    /// Jobs served from the profile cache.
    pub profile_hits: u64,
}

/// A finished batch: per-job reports in job order, plus cache accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResult {
    /// One report per job, sorted by job id.
    pub reports: Vec<Report>,
    /// Cache and size accounting.
    pub stats: BatchStats,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn setting_json(setting: SectorSetting) -> String {
    match setting {
        SectorSetting::Off => "\"off\"".to_string(),
        SectorSetting::L2Ways(w) => w.to_string(),
    }
}

impl Report {
    /// One JSON object on one line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"job\":{},\"matrix\":\"", self.id);
        json_escape(&mut out, &self.matrix);
        let _ = write!(
            out,
            "\",\"fingerprint\":\"{:016x}\",\"rows\":{},\"cols\":{},\"nnz\":{},\
             \"method\":\"{:?}\",\"setting\":{},\"threads\":{},\"l2_misses\":{}",
            self.fingerprint,
            self.rows,
            self.cols,
            self.nnz,
            self.method,
            setting_json(self.setting),
            self.threads,
            self.prediction.l2_misses,
        );
        out.push_str(",\"by_array\":{");
        for (i, (array, label)) in Array::ALL
            .iter()
            .zip(["x", "y", "a", "colidx", "rowptr"])
            .enumerate()
        {
            let _ = write!(
                out,
                "{}\"{label}\":{}",
                if i == 0 { "" } else { "," },
                self.prediction.misses_of(*array)
            );
        }
        out.push_str("}}");
        out
    }
}

impl BatchStats {
    /// The final summary line of a batch's JSON-lines output.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"summary\":{{\"matrices\":{},\"jobs\":{},\"profile_computations\":{},\
             \"profile_hits\":{}}}}}",
            self.matrices, self.jobs, self.profile_computations, self.profile_hits
        )
    }
}

impl BatchResult {
    /// The full JSON-lines document: one line per job, then the summary.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out.push_str(&self.stats.to_json_line());
        out.push('\n');
        out
    }
}

/// Builds a report from a finished job (helper for the engine).
pub(crate) fn report_for(
    job: &Job,
    name: &str,
    fingerprint: u64,
    shape: (usize, usize, usize),
    threads: usize,
    prediction: Prediction,
) -> Report {
    Report {
        id: job.id,
        matrix: name.to_string(),
        fingerprint,
        rows: shape.0,
        cols: shape.1,
        nnz: shape.2,
        method: job.method,
        setting: job.setting,
        threads,
        prediction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            id: 3,
            matrix: "band \"w\"=2".to_string(),
            fingerprint: 0xDEAD_BEEF,
            rows: 10,
            cols: 11,
            nnz: 12,
            method: Method::A,
            setting: SectorSetting::L2Ways(5),
            threads: 4,
            prediction: Prediction {
                setting: SectorSetting::L2Ways(5),
                l2_misses: 15,
                by_array: [1, 2, 3, 4, 5],
            },
        }
    }

    #[test]
    fn report_json_schema() {
        let line = sample().to_json_line();
        assert_eq!(
            line,
            "{\"job\":3,\"matrix\":\"band \\\"w\\\"=2\",\
             \"fingerprint\":\"00000000deadbeef\",\"rows\":10,\"cols\":11,\"nnz\":12,\
             \"method\":\"A\",\"setting\":5,\"threads\":4,\"l2_misses\":15,\
             \"by_array\":{\"x\":1,\"y\":2,\"a\":3,\"colidx\":4,\"rowptr\":5}}"
        );
    }

    #[test]
    fn off_setting_is_a_string() {
        let mut r = sample();
        r.setting = SectorSetting::Off;
        assert!(r.to_json_line().contains("\"setting\":\"off\""));
    }

    #[test]
    fn summary_line() {
        let stats = BatchStats {
            matrices: 20,
            jobs: 140,
            profile_computations: 20,
            profile_hits: 120,
        };
        assert_eq!(
            stats.to_json_line(),
            "{\"summary\":{\"matrices\":20,\"jobs\":140,\
             \"profile_computations\":20,\"profile_hits\":120}}"
        );
    }
}
