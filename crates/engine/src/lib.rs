//! Parallel batch prediction engine with fingerprint-keyed result caching.
//!
//! Sweeping the locality model over a corpus is embarrassingly parallel
//! across matrices but wasteful if done naively: the paper's Table 2/3
//! sweep evaluates 7 sector settings per matrix and method, and the
//! expensive part — the trace analysis — is *identical* for all 7. This
//! crate runs such batches on a work-stealing pool of plain `std`
//! threads, memoizing each matrix's [`LocalityProfile`] under its
//! structural fingerprint so a `matrices × methods × settings` batch
//! computes only `matrices × methods` profiles.
//!
//! * [`job`] — [`BatchSpec`] (what to run) and its line-based spec format,
//!   including the `format`/`reorder` directives that run a batch under a
//!   different storage format (e.g. SELL-C-σ) or row order.
//! * [`cache`] — the [`ProfileCache`], keyed by the workload's
//!   format-tagged [`SpmvWorkload::fingerprint`] (reorder-tagged by the
//!   spec) + method + threads + machine geometry.
//! * [`pool`] — the work-stealing worker pool ([`pool::run_indexed`]).
//! * [`report`] — per-job [`Report`]s and the deterministic JSON-lines
//!   output (no timestamps; identical bytes for any worker count).
//!
//! # Example
//!
//! ```
//! use locality_engine::{run_batch, BatchSpec};
//!
//! let spec = BatchSpec::parse(
//!     "corpus count=3 scale=64 seed=1\n\
//!      settings paper\n\
//!      scale 64\n",
//! )
//! .unwrap();
//! let result = run_batch(&spec).unwrap();
//! // 3 matrices x 2 methods x 7 settings:
//! assert_eq!(result.reports.len(), 42);
//! // ...but only 3 x 2 profile computations; the rest hit the cache.
//! assert_eq!(result.stats.profile_computations, 6);
//! assert_eq!(result.stats.profile_hits, 36);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cancel;
pub mod job;
pub mod pool;
pub mod report;

pub use cache::{Admission, CacheLookup, EvictionPolicy, ProfileCache, ProfileKey};
pub use cancel::{CancelToken, Cancelled};
pub use job::{BatchSpec, Job, MatrixSource, SpecError};
pub use report::{BatchResult, BatchStats, EcmSummary, Report};

use a64fx::MachineConfig;
use locality_core::{
    DomainPartial, FormatSpec, LocalityProfile, Method, Prediction, ProfileBuilder, ReorderSpec,
    RhsLayout, ScenarioSpec, SectorSetting, SpmvWorkload, TrackedCaps, Workload,
};
use machine::{CacheHierarchy, HierarchyConfig, MachineSpec};
use sparsemat::CsrMatrix;
use std::fmt;

/// A batch that could not run: bad spec, unreadable matrix file, or a run
/// stopped by its cancellation token.
#[derive(Debug)]
pub enum EngineError {
    /// The spec text was malformed.
    Spec(SpecError),
    /// A `mtx` source failed to load.
    Matrix {
        /// The path that failed.
        path: std::path::PathBuf,
        /// Reader error text.
        message: String,
    },
    /// A resolved matrix is incompatible with the spec's scenario (e.g.
    /// a CG iteration over a non-square matrix).
    Scenario {
        /// The resolved matrix name.
        name: String,
        /// What was incompatible.
        message: String,
    },
    /// The batch stopped early: its deadline passed or it was cancelled.
    Cancelled(Cancelled),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec(e) => write!(f, "{e}"),
            EngineError::Matrix { path, message } => {
                write!(f, "cannot load '{}': {message}", path.display())
            }
            EngineError::Scenario { name, message } => {
                write!(f, "cannot trace '{name}': {message}")
            }
            EngineError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> Self {
        EngineError::Spec(e)
    }
}

impl From<Cancelled> for EngineError {
    fn from(c: Cancelled) -> Self {
        EngineError::Cancelled(c)
    }
}

/// A resolved workload: the data plus everything the reports need.
struct BatchMatrix {
    name: String,
    workload: Workload,
}

/// Decorates a matrix name with the non-default format/reorder/scenario
/// suffixes, e.g. `"band-7@rcm@sell:32,128@rhs16"`. CSR with natural
/// order and plain SpMV keeps the bare name, so existing batch outputs
/// are byte-identical. An SpMM view with `k = 1` also keeps the bare
/// name — it *is* the plain SpMV, bit for bit.
fn workload_name(
    base: &str,
    format: FormatSpec,
    reorder: ReorderSpec,
    scenario: ScenarioSpec,
) -> String {
    let mut name = base.to_string();
    if reorder != ReorderSpec::None {
        name.push('@');
        name.push_str(reorder.label());
    }
    if format != FormatSpec::Csr {
        name.push('@');
        name.push_str(&format.label());
    }
    match scenario {
        ScenarioSpec::Spmv | ScenarioSpec::Spmm { k: 1, .. } => {}
        ScenarioSpec::Spmm { k, layout } => {
            name.push_str(&format!("@rhs{k}"));
            if layout == RhsLayout::Separate {
                name.push_str(":col");
            }
        }
        ScenarioSpec::Cg => name.push_str("@cg"),
    }
    name
}

/// Resolves the spec's sources, in order, into concrete workloads (the
/// spec's reorder is applied to each CSR matrix, then the format view is
/// built, then the scenario view is wrapped around it).
fn resolve_sources(spec: &BatchSpec) -> Result<Vec<BatchMatrix>, EngineError> {
    let make = |name: String, matrix: CsrMatrix| -> Result<BatchMatrix, EngineError> {
        if spec.scenario == ScenarioSpec::Cg && matrix.num_rows() != matrix.num_cols() {
            return Err(EngineError::Scenario {
                name,
                message: format!(
                    "a CG iteration needs a square matrix, got {}x{}",
                    matrix.num_rows(),
                    matrix.num_cols()
                ),
            });
        }
        Ok(BatchMatrix {
            name: workload_name(&name, spec.format, spec.reorder, spec.scenario),
            workload: Workload::build_scenario(matrix, spec.format, spec.reorder, spec.scenario),
        })
    };
    let mut out = Vec::new();
    for source in &spec.sources {
        match source {
            MatrixSource::Corpus { count, scale, seed } => {
                for nm in corpus::corpus(*count, *scale, *seed) {
                    out.push(make(nm.name, nm.matrix)?);
                }
            }
            MatrixSource::Table1 { scale } => {
                for nm in corpus::table1_suite(*scale) {
                    out.push(make(nm.name, nm.matrix)?);
                }
            }
            MatrixSource::MtxFile(path) => {
                let matrix =
                    sparsemat::mm::read_csr_file(path).map_err(|e| EngineError::Matrix {
                        path: path.clone(),
                        message: e.to_string(),
                    })?;
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                out.push(make(name, matrix)?);
            }
        }
    }
    Ok(out)
}

/// Expands the spec into per-(matrix, machine, method, setting) jobs, in
/// the deterministic order: matrices outermost, then machines, then
/// methods, then settings.
fn expand_jobs(spec: &BatchSpec, num_matrices: usize) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(num_matrices * spec.jobs_per_matrix());
    let mut id = 0;
    for matrix in 0..num_matrices {
        for machine in 0..spec.num_machines() {
            for &method in &spec.methods {
                for &setting in &spec.settings {
                    jobs.push(Job {
                        id,
                        matrix,
                        machine,
                        method,
                        setting,
                    });
                    id += 1;
                }
            }
        }
    }
    jobs
}

/// One machine of the batch's sweep, resolved at the spec's scale and
/// thread count: the full hierarchy (for fingerprinting and the ECM
/// model) plus its two-level projection (what the locality model runs
/// on).
struct ResolvedMachine {
    /// Report label (`"a64fx"`, `"generic-x86"`, `"custom"`).
    label: String,
    /// Emit the label in reports? `false` for the default `a64fx`,
    /// keeping legacy bytes.
    emit_label: bool,
    /// Two-level projection for the analytic model.
    cfg: MachineConfig,
    /// The declarative hierarchy itself.
    hier: HierarchyConfig,
    /// [`CacheHierarchy::fingerprint`] — the cache-key machine tag.
    tag: u64,
}

/// Resolves the spec's machine sweep (the implicit `[a64fx]` when no
/// `machine` directive was given). For the a64fx entry this reproduces
/// the historical `a64fx_scaled(scale).with_cores(threads)` config
/// exactly — `MachineConfig::a64fx_scaled` *is* the projection of the
/// scaled preset hierarchy.
fn resolve_machines(spec: &BatchSpec) -> Vec<ResolvedMachine> {
    const DEFAULT: [MachineSpec; 1] = [MachineSpec::A64fx];
    let list: &[MachineSpec] = if spec.machines.is_empty() {
        &DEFAULT
    } else {
        &spec.machines
    };
    list.iter()
        .map(|ms| {
            let hier = ms.hierarchy(spec.scale).with_cores(spec.threads.max(1));
            ResolvedMachine {
                label: ms.label().to_string(),
                emit_label: !ms.is_default(),
                cfg: MachineConfig::from_hierarchy(&hier),
                tag: hier.fingerprint(),
                hier,
            }
        })
        .collect()
}

/// The default machine the batch models (kept for tests and callers
/// outside the machine sweep).
#[cfg(test)]
fn machine_for(spec: &BatchSpec) -> MachineConfig {
    let cfg = if spec.scale <= 1 {
        MachineConfig::a64fx()
    } else {
        MachineConfig::a64fx_scaled(spec.scale)
    };
    cfg.with_cores(spec.threads.max(1))
}

/// Derives the ECM throughput estimate for one prediction: the memory
/// link carries the model's predicted LLC miss lines (per critical-path
/// domain, uniform-spread assumption), inner links carry at least the
/// workload's distinct-line footprint (the streaming lower bound — exact
/// for the matrix/index/result streams, optimistic for repeated `x`
/// gathers missing in inner levels), and the in-core time retires one
/// gather-FMA group per `x` reference at the machine's `cycles_per_nnz`.
/// Used by the batch/streaming paths for their `ecm on` reports; public
/// so the CLI can attach the same estimate to one-shot predictions.
pub fn ecm_for<W: SpmvWorkload>(
    workload: &W,
    hier: &HierarchyConfig,
    prediction: &Prediction,
) -> EcmSummary {
    obs::add("engine.ecm.estimates", 1);
    let line = hier.line_bytes() as f64;
    let cores = hier.num_cores().max(1) as f64;
    let domains = hier.num_domains().max(1) as f64;
    let footprint = workload.layout(hier.line_bytes()).total_lines() as f64 * line;
    let x_refs = workload.x_refs() as f64;
    let mut link_bytes: Vec<f64> = (0..hier.num_levels())
        .map(|i| {
            if machine::ecm::link_is_per_core(hier, i) {
                footprint / cores
            } else {
                footprint / domains
            }
        })
        .collect();
    *link_bytes
        .last_mut()
        .expect("validated hierarchy has levels") = prediction.l2_misses as f64 * line / domains;
    let input = machine::EcmInput {
        flops: 2.0 * x_refs,
        core_seconds: machine::ecm::core_seconds(hier, x_refs / cores),
        link_bytes,
    };
    let est = machine::ecm::estimate(hier, &input);
    EcmSummary {
        gflops: est.gflops,
        t_total_s: est.t_total_s,
        t_core_s: est.t_core_s,
        links: est
            .t_link_s
            .iter()
            .enumerate()
            .map(|(i, &t)| (machine::ecm::link_label(hier, i), t))
            .collect(),
        bottleneck: est.bottleneck,
    }
}

/// Computes a profile with its independent L2 domains fanned out over the
/// work-stealing pool: each domain's trace analysis is a pure function of
/// the builder, so the partials run on `workers` threads and are merged in
/// domain order — the result is byte-identical to the sequential pipeline
/// for any worker count. With `settings`, method (A) runs the
/// sweep-restricted marker pipeline (see
/// [`ProfileBuilder::for_sweep`]); without, the capacity-independent
/// exact pipeline.
pub fn compute_profile_parallel<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
    settings: Option<&[SectorSetting]>,
    workers: usize,
) -> LocalityProfile {
    try_compute_profile_parallel(
        workload,
        cfg,
        method,
        threads,
        settings,
        workers,
        &CancelToken::never(),
    )
    .expect("a never-cancelled computation completes")
}

/// [`compute_profile_parallel`] with an explicit capacity-shard override.
/// `shards = None` applies the heuristic (shard only when the domain
/// count alone cannot occupy the pool); `Some(n)` forces `n` shards per
/// domain, clamped to the tracked grid's slot count. Untracked (exact)
/// and method (B) builders have nothing to shard and always run the plain
/// per-domain fan-out.
pub fn compute_profile_sharded<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
    settings: Option<&[SectorSetting]>,
    workers: usize,
    shards: Option<usize>,
) -> LocalityProfile {
    try_compute_profile_sharded(
        workload,
        cfg,
        method,
        threads,
        settings,
        workers,
        shards,
        &CancelToken::never(),
    )
    .expect("a never-cancelled computation completes")
}

/// Cancellable [`compute_profile_parallel`]: `token` is polled before
/// each per-domain trace analysis (the engine's cooperative cancellation
/// checkpoints — one huge matrix is abandoned within a domain's worth of
/// work, not a profile's worth). Returns `None` once the token trips;
/// the partially-built profile is discarded.
#[allow(clippy::too_many_arguments)]
pub fn try_compute_profile_parallel<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
    settings: Option<&[SectorSetting]>,
    workers: usize,
    token: &CancelToken,
) -> Option<LocalityProfile> {
    try_compute_profile_sharded(
        workload, cfg, method, threads, settings, workers, None, token,
    )
}

/// Cancellable [`compute_profile_sharded`]. When one matrix has fewer L2
/// domains than the pool has workers, the per-domain fan-out alone cannot
/// saturate the pool; sweep (tracked) method (A) builders then split each
/// domain's tracked capacity grid into shards — every shard replays the
/// identical stream against a slice of the capacities, and the
/// deterministic per-domain merge reproduces the unsharded counters bit
/// for bit, so the profile (and hence all report bytes) is independent of
/// the worker count.
#[allow(clippy::too_many_arguments)]
pub fn try_compute_profile_sharded<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
    settings: Option<&[SectorSetting]>,
    workers: usize,
    shards: Option<usize>,
    token: &CancelToken,
) -> Option<LocalityProfile> {
    try_compute_profile_traced(
        workload,
        cfg,
        method,
        threads,
        settings,
        workers,
        shards,
        token,
        &obs::RequestCtx::disabled(),
    )
}

/// [`try_compute_profile_sharded`] under a per-request trace ctx: each
/// per-domain (or per-shard) partial records a `compute/domain` (or
/// `compute/shard`) phase into `ctx` from whichever pool worker ran it,
/// so a TRACE of the request shows the fan-out width and its wall time.
/// A [`disabled`](obs::RequestCtx::disabled) ctx records nothing and
/// costs an `Option` check per partial — profiles (and hence report
/// bytes) are identical either way.
#[allow(clippy::too_many_arguments)]
pub fn try_compute_profile_traced<W: SpmvWorkload>(
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    threads: usize,
    settings: Option<&[SectorSetting]>,
    workers: usize,
    shards: Option<usize>,
    token: &CancelToken,
    ctx: &obs::RequestCtx,
) -> Option<LocalityProfile> {
    let _span = obs::span("profile.build");
    obs::add("core.profile.builds", 1);
    let builder = match settings {
        Some(s) => ProfileBuilder::for_sweep(workload, cfg, method, threads, s),
        None => ProfileBuilder::new(workload, cfg, method, threads),
    };
    obs::observe("core.profile.domains", builder.num_domains() as u64);
    let num_domains = builder.num_domains();
    let shard_count = match shards {
        Some(n) => n.max(1),
        None => {
            let pool_width = pool::resolved_workers(workers);
            if num_domains == 0 || num_domains >= pool_width {
                1
            } else {
                pool_width.div_ceil(num_domains)
            }
        }
    }
    .min(builder.max_shards());

    if shard_count <= 1 {
        let domains: Vec<usize> = (0..num_domains).collect();
        let partials: Option<Vec<DomainPartial>> = pool::run_indexed(workers, &domains, |_, &d| {
            if token.is_cancelled() {
                None
            } else {
                let _p = ctx.phase(&["compute", "domain"], Some("serve.phase.domain_ns"));
                Some(builder.domain_partial(d))
            }
        })
        .into_iter()
        .collect();
        return Some(builder.finish(partials?));
    }

    obs::gauge_max("engine.profile.shards", shard_count as u64);
    let tasks: Vec<(usize, usize)> = (0..num_domains)
        .flat_map(|d| (0..shard_count).map(move |s| (d, s)))
        .collect();
    let shard_partials: Option<Vec<DomainPartial>> =
        pool::run_indexed(workers, &tasks, |_, &(d, s)| {
            if token.is_cancelled() {
                None
            } else {
                let _p = ctx.phase(&["compute", "shard"], Some("serve.phase.shard_ns"));
                Some(builder.domain_shard_partial(d, s, shard_count))
            }
        })
        .into_iter()
        .collect();
    // Tasks are domain-major, so consecutive chunks are one domain's
    // shards in shard order — exactly what the merge expects.
    let partials: Vec<DomainPartial> = shard_partials?
        .chunks(shard_count)
        .map(|chunk| DomainPartial::merge_shards(chunk.to_vec()))
        .collect();
    Some(builder.finish(partials))
}

/// Runs a batch: resolves workloads from the spec's sources (applying its
/// `reorder` and `format`), then fans the jobs out via
/// [`run_on_workloads`]. A spec with `deadline_ms` runs under a
/// [`CancelToken`] covering the whole batch and reports
/// [`EngineError::Cancelled`] if the budget runs out.
pub fn run_batch(spec: &BatchSpec) -> Result<BatchResult, EngineError> {
    let token = match spec.deadline_ms {
        Some(ms) => CancelToken::with_deadline_ms(ms),
        None => CancelToken::never(),
    };
    run_batch_cancellable(spec, &token)
}

/// [`run_batch`] under an explicit caller-owned token. The spec's own
/// `deadline_ms` is *not* consulted here — the caller owns the budget
/// (the serve daemon folds the spec deadline, the request deadline and
/// shutdown cancellation into the one token it passes).
pub fn run_batch_cancellable(
    spec: &BatchSpec,
    token: &CancelToken,
) -> Result<BatchResult, EngineError> {
    let matrices = resolve_sources(spec)?;
    let refs: Vec<(&str, &Workload)> = matrices
        .iter()
        .map(|m| (m.name.as_str(), &m.workload))
        .collect();
    Ok(try_run_on_workloads(spec, &refs, token)?)
}

/// Runs the spec's methods × settings sweep over an explicit matrix list
/// (the spec's own `sources` are ignored). This is the entry point for
/// experiment drivers that build or filter their matrix population
/// themselves — e.g. the Table 2/3 accuracy tables, which keep only
/// matrices above the L2-capacity threshold.
///
/// Jobs run on the work-stealing pool; each (matrix, method) profile is
/// computed once and shared by every setting via the fingerprint-keyed
/// cache. Reports come back sorted by job id — matrix outermost, then
/// method, then setting, matching the spec's orders — and carry no
/// timing, so the output is byte-identical for any worker count.
pub fn run_on(spec: &BatchSpec, matrices: &[(&str, &CsrMatrix)]) -> BatchResult {
    run_on_workloads(spec, matrices)
}

/// Format-generic [`run_on`]: the sweep over an explicit list of already
/// built workloads (any [`SpmvWorkload`] — `&CsrMatrix`, `&SellMatrix`,
/// or the [`Workload`] enum). The spec's `sources`, `format` and
/// `reorder` are *not* applied here — the caller owns the conversion —
/// but `reorder` still tags the cache/report fingerprints, so callers
/// passing reordered matrices keep them distinct from natural-order runs.
pub fn run_on_workloads<W: SpmvWorkload>(spec: &BatchSpec, matrices: &[(&str, &W)]) -> BatchResult {
    try_run_on_workloads(spec, matrices, &CancelToken::never())
        .expect("a never-cancelled batch completes")
}

/// The cache key for one job of `spec` on the resolved machine.
/// `caps_fingerprint` is the sweep-restricted grid fingerprint for
/// method (A) jobs (marker stacks only answer at the capacities they
/// tracked); method (B) profiles are capacity-independent (0). The
/// machine's hierarchy fingerprint keeps sweeps over machines whose
/// two-level projections happen to agree from sharing slots.
fn job_key(
    spec: &BatchSpec,
    rm: &ResolvedMachine,
    caps_fingerprint: u64,
    fingerprint: u64,
    method: Method,
) -> ProfileKey {
    ProfileKey {
        fingerprint,
        method,
        threads: spec.threads,
        line_bytes: rm.cfg.l2.line_bytes,
        cores_per_domain: rm.cfg.cores_per_domain,
        caps_fingerprint: match method {
            Method::A => caps_fingerprint,
            Method::B => 0,
        },
        machine_tag: rm.tag,
    }
}

/// Cancellable [`run_on_workloads`]: `token` is polled before every job
/// and between the per-domain partials inside each profile computation.
/// Once it trips the whole run reports [`Cancelled`] — reports are all
/// or nothing, matching the batch contract (deterministic, complete
/// JSON-lines output) rather than emitting a truncated report list.
pub fn try_run_on_workloads<W: SpmvWorkload>(
    spec: &BatchSpec,
    matrices: &[(&str, &W)],
    token: &CancelToken,
) -> Result<BatchResult, Cancelled> {
    let _span = obs::span("batch.run");
    obs::add("engine.batch.runs", 1);
    let fingerprints: Vec<u64> = matrices
        .iter()
        .map(|(_, m)| spec.reorder.tag_fingerprint(m.fingerprint()))
        .collect();
    let jobs = expand_jobs(spec, matrices.len());
    let machines = resolve_machines(spec);
    let cache = ProfileCache::new();
    let caps_fingerprints: Vec<u64> = machines
        .iter()
        .map(|rm| TrackedCaps::for_sweep(&rm.cfg, &spec.settings).fingerprint())
        .collect();

    let reports: Option<Vec<Report>> = pool::run_indexed(spec.workers, &jobs, |_, job| {
        if token.is_cancelled() {
            return None;
        }
        let (name, matrix) = matrices[job.matrix];
        let fingerprint = fingerprints[job.matrix];
        let rm = &machines[job.machine];
        let key = job_key(
            spec,
            rm,
            caps_fingerprints[job.machine],
            fingerprint,
            job.method,
        );
        let lookup = cache.get_or_try_compute(key, || {
            try_compute_profile_parallel(
                matrix,
                &rm.cfg,
                job.method,
                spec.threads,
                Some(&spec.settings),
                spec.workers,
                token,
            )
        })?;
        let prediction = lookup.profile.evaluate(&rm.cfg, &[job.setting])[0];
        let ecm = spec.ecm.then(|| ecm_for(matrix, &rm.hier, &prediction));
        Some(report::report_for(
            job,
            name,
            fingerprint,
            (matrix.num_rows(), matrix.num_cols(), matrix.nnz()),
            spec.threads,
            prediction,
            rm.emit_label.then(|| rm.label.clone()),
            ecm,
        ))
    })
    .into_iter()
    .collect();

    // The cache is the single source of truth for both the report stats
    // and the telemetry counters — no parallel tally.
    cache.flush_obs();
    obs::add("engine.batch.jobs", jobs.len() as u64);

    let Some(reports) = reports else {
        return Err(token.cancelled().unwrap_or(Cancelled::Shutdown));
    };
    Ok(BatchResult {
        stats: BatchStats {
            matrices: matrices.len(),
            jobs: jobs.len(),
            profile_computations: cache.computations(),
            profile_hits: cache.hits(),
        },
        reports,
    })
}

/// Per-request accounting from a [`run_streaming`] call — the serve
/// analogue of [`BatchStats`], distinguishing hits against the caller's
/// long-lived shared cache from profiles computed for this request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Matrices this request resolved.
    pub matrices: usize,
    /// Jobs emitted (matrices × methods × settings).
    pub jobs: usize,
    /// Profiles computed for this request (shared-cache misses).
    pub profile_computations: u64,
    /// Jobs served from the shared cache (cross- or intra-request).
    pub profile_hits: u64,
}

/// Streaming batch run for the prediction service: resolves the spec's
/// sources, then runs the jobs **in job order on the calling thread**,
/// emitting each finished [`Report`] through `emit` the moment it exists
/// rather than collecting the batch. Parallelism comes from the
/// per-domain fan-out inside each profile computation (`spec.workers`)
/// and from the caller running many requests concurrently — all sharing
/// `cache`, which is where repeated matrices across clients become
/// near-free.
///
/// `token` is polled before every job and between domain partials; a
/// tripped token aborts the remainder (already-emitted reports stand —
/// a streaming protocol cannot unsend them) and returns the reason.
pub fn run_streaming(
    spec: &BatchSpec,
    cache: &ProfileCache,
    token: &CancelToken,
    emit: impl FnMut(&Report),
) -> Result<StreamStats, EngineError> {
    run_streaming_traced(spec, cache, token, &obs::RequestCtx::disabled(), emit)
}

/// [`run_streaming`] under a per-request trace ctx (the serve daemon's
/// entry point). Each job's shared-cache lookup records a `cache-lookup`
/// phase, profile computations record `compute` (with `domain`/`shard`
/// children from the pool workers — see
/// [`try_compute_profile_traced`]), and each report emission records
/// `stream-out`; every phase also feeds a fleet-wide `serve.phase.*`
/// latency histogram. Report bytes are identical to an untraced run.
pub fn run_streaming_traced(
    spec: &BatchSpec,
    cache: &ProfileCache,
    token: &CancelToken,
    ctx: &obs::RequestCtx,
    mut emit: impl FnMut(&Report),
) -> Result<StreamStats, EngineError> {
    let _span = obs::span("serve.request");
    let matrices = resolve_sources(spec)?;
    let jobs = expand_jobs(spec, matrices.len());
    let machines = resolve_machines(spec);
    let caps_fingerprints: Vec<u64> = machines
        .iter()
        .map(|rm| TrackedCaps::for_sweep(&rm.cfg, &spec.settings).fingerprint())
        .collect();
    let mut stats = StreamStats {
        matrices: matrices.len(),
        jobs: jobs.len(),
        ..StreamStats::default()
    };
    for job in &jobs {
        if let Some(reason) = token.cancelled() {
            return Err(reason.into());
        }
        let m = &matrices[job.matrix];
        let rm = &machines[job.machine];
        let fingerprint = spec.reorder.tag_fingerprint(m.workload.fingerprint());
        let key = job_key(
            spec,
            rm,
            caps_fingerprints[job.machine],
            fingerprint,
            job.method,
        );
        let lookup = {
            let _lookup_phase = ctx.phase(&["cache-lookup"], Some("serve.phase.cache_lookup_ns"));
            cache.get_or_try_compute(key, || {
                let _compute_phase = ctx.phase(&["compute"], Some("serve.phase.compute_ns"));
                try_compute_profile_traced(
                    &m.workload,
                    &rm.cfg,
                    job.method,
                    spec.threads,
                    Some(&spec.settings),
                    spec.workers,
                    None,
                    token,
                    ctx,
                )
            })
        }
        .ok_or_else(|| EngineError::from(token.cancelled().unwrap_or(Cancelled::Shutdown)))?;
        if lookup.hit {
            stats.profile_hits += 1;
        } else {
            stats.profile_computations += 1;
        }
        let prediction = lookup.profile.evaluate(&rm.cfg, &[job.setting])[0];
        let ecm = spec
            .ecm
            .then(|| ecm_for(&m.workload, &rm.hier, &prediction));
        let report = report::report_for(
            job,
            &m.name,
            fingerprint,
            (
                m.workload.num_rows(),
                m.workload.num_cols(),
                m.workload.nnz(),
            ),
            spec.threads,
            prediction,
            rm.emit_label.then(|| rm.label.clone()),
            ecm,
        );
        {
            let _out_phase = ctx.phase(&["stream-out"], Some("serve.phase.stream_out_ns"));
            emit(&report);
        }
    }
    Ok(stats)
}

/// Convenience: predictions for one workload across a sweep, through the
/// same cache type the batch path uses. Exists so experiment drivers can
/// share a long-lived [`ProfileCache`] across calls. Keys on the
/// workload's format-tagged fingerprint, so CSR and SELL views of the
/// same matrix occupy distinct slots.
pub fn predict_cached<W: SpmvWorkload>(
    cache: &ProfileCache,
    workload: &W,
    cfg: &MachineConfig,
    method: Method,
    settings: &[SectorSetting],
    threads: usize,
) -> Vec<locality_core::Prediction> {
    // Capacity-independent profile (caps_fingerprint 0, machine-agnostic
    // tag 0): callers may hit the same cache entry with arbitrary
    // follow-up sweeps, and they key on the projection alone.
    let key = ProfileKey {
        fingerprint: workload.fingerprint(),
        method,
        threads,
        line_bytes: cfg.l2.line_bytes,
        cores_per_domain: cfg.cores_per_domain,
        caps_fingerprint: 0,
        machine_tag: 0,
    };
    let profile = cache.get_or_compute(key, || {
        LocalityProfile::compute(workload, cfg, method, threads)
    });
    profile.evaluate(cfg, settings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_core::predict::predict;

    fn small_spec() -> BatchSpec {
        BatchSpec::parse(
            "corpus count=4 scale=64 seed=11\n\
             settings paper\n\
             threads 1\n\
             scale 64\n",
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_direct_predictions() {
        let spec = small_spec();
        let result = run_batch(&spec).unwrap();
        let cfg = machine_for(&spec);
        let suite = corpus::corpus(4, 64, 11);
        assert_eq!(result.reports.len(), 4 * 2 * 7);
        for report in &result.reports {
            let nm = &suite[report.id / spec.jobs_per_matrix()];
            assert_eq!(report.matrix, nm.name);
            let direct = predict(&nm.matrix, &cfg, report.method, &[report.setting], 1);
            assert_eq!(report.prediction, direct[0], "job {}", report.id);
        }
    }

    #[test]
    fn identical_output_for_any_worker_count() {
        let mut spec = small_spec();
        spec.workers = 1;
        let reference = run_batch(&spec).unwrap();
        for workers in [2, 8] {
            spec.workers = workers;
            let result = run_batch(&spec).unwrap();
            assert_eq!(result, reference, "{workers} workers");
            assert_eq!(
                result.to_json_lines(),
                reference.to_json_lines(),
                "{workers} workers (bytes)"
            );
        }
    }

    #[test]
    fn sweep_settings_share_profiles() {
        let result = run_batch(&small_spec()).unwrap();
        // 4 matrices x 2 methods x 7 settings = 56 jobs, but only
        // 4 x 2 = 8 profile computations: the sweep dimension is free.
        assert_eq!(result.stats.jobs, 56);
        assert_eq!(result.stats.profile_computations, 8);
        assert_eq!(result.stats.profile_hits, 48);
        assert!(
            result.stats.profile_computations < result.stats.jobs as u64,
            "cache must beat matrices x settings"
        );
    }

    #[test]
    fn duplicate_matrices_share_profiles_across_sources() {
        // The same corpus twice: fingerprints collide, profiles are shared.
        let spec = BatchSpec::parse(
            "corpus count=2 scale=64 seed=3\n\
             corpus count=2 scale=64 seed=3\n\
             settings off\n\
             methods A\n\
             scale 64\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        assert_eq!(result.stats.matrices, 4);
        assert_eq!(result.stats.profile_computations, 2);
    }

    #[test]
    fn sell_batches_run_and_key_separately() {
        let spec = BatchSpec::parse(
            "corpus count=2 scale=64 seed=11\n\
             settings off,4\n\
             methods B\n\
             threads 1\n\
             scale 64\n\
             format sell:8,32\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        // 2 matrices x 1 method x 2 settings
        assert_eq!(result.reports.len(), 4);
        assert_eq!(result.stats.profile_computations, 2);
        let cfg = machine_for(&spec);
        let suite = corpus::corpus(2, 64, 11);
        for report in &result.reports {
            let nm = &suite[report.id / spec.jobs_per_matrix()];
            // The name carries the format suffix and the fingerprint is
            // format-tagged: a CSR sweep of the same corpus shares nothing.
            assert_eq!(report.matrix, format!("{}@sell:8,32", nm.name));
            let wl = Workload::build(nm.matrix.clone(), spec.format, spec.reorder);
            assert_ne!(report.fingerprint, nm.matrix.fingerprint());
            assert_eq!(report.fingerprint, wl.fingerprint());
            let direct = predict(&wl, &cfg, report.method, &[report.setting], 1);
            assert_eq!(report.prediction, direct[0], "job {}", report.id);
        }
    }

    #[test]
    fn reorder_tags_names_and_fingerprints() {
        let spec = BatchSpec::parse(
            "corpus count=2 scale=64 seed=5\n\
             settings off\n\
             methods B\n\
             scale 64\n\
             reorder rcm\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        let suite = corpus::corpus(2, 64, 5);
        for report in &result.reports {
            let nm = &suite[report.id / spec.jobs_per_matrix()];
            assert_eq!(report.matrix, format!("{}@rcm", nm.name));
            let reordered = spec.reorder.apply(nm.matrix.clone());
            assert_eq!(
                report.fingerprint,
                spec.reorder.tag_fingerprint(reordered.fingerprint())
            );
        }
    }

    #[test]
    fn csr_reports_keep_bare_names_and_legacy_fingerprints() {
        // The format-generic resolver must leave default (CSR, natural
        // order) batches byte-identical to the pre-workload engine.
        let result = run_batch(&small_spec()).unwrap();
        let suite = corpus::corpus(4, 64, 11);
        for report in &result.reports {
            let nm = &suite[report.id / small_spec().jobs_per_matrix()];
            assert_eq!(report.matrix, nm.name);
            assert_eq!(report.fingerprint, nm.matrix.fingerprint());
        }
    }

    #[test]
    fn streaming_matches_batch_and_shares_the_cache_across_requests() {
        let spec = small_spec();
        let batch = run_batch(&spec).unwrap();
        let cache = ProfileCache::bounded(64);
        let token = CancelToken::never();

        let mut streamed = Vec::new();
        let stats = run_streaming(&spec, &cache, &token, |r| streamed.push(r.clone())).unwrap();
        assert_eq!(streamed, batch.reports, "streamed reports are byte-equal");
        assert_eq!(stats.jobs, batch.stats.jobs);
        assert_eq!(stats.profile_computations, batch.stats.profile_computations);
        assert_eq!(stats.profile_hits, batch.stats.profile_hits);

        // The same request again: every profile comes from the shared
        // cache — the cross-request regime the serve daemon exists for.
        let mut again = Vec::new();
        let stats2 = run_streaming(&spec, &cache, &token, |r| again.push(r.clone())).unwrap();
        assert_eq!(again, batch.reports);
        assert_eq!(stats2.profile_computations, 0);
        assert_eq!(stats2.profile_hits, stats2.jobs as u64);
    }

    #[test]
    fn traced_streaming_keeps_report_bytes_and_records_phases() {
        let spec = small_spec();
        let cache = ProfileCache::new();
        let token = CancelToken::never();
        let mut plain = Vec::new();
        run_streaming(&spec, &cache, &token, |r| plain.push(r.clone())).unwrap();

        let traced_cache = ProfileCache::new();
        let ctx = obs::RequestCtx::new("t1");
        let mut traced = Vec::new();
        run_streaming_traced(&spec, &traced_cache, &token, &ctx, |r| {
            traced.push(r.clone())
        })
        .unwrap();
        assert_eq!(traced, plain, "tracing must not change report bytes");

        let trace = ctx.finish().expect("live ctx yields a trace");
        let lookups = trace.root.get(&["cache-lookup"]).expect("lookup phase");
        assert_eq!(lookups.count, 56, "one lookup per job");
        let compute = trace.root.get(&["compute"]).expect("compute phase");
        assert_eq!(compute.count, 8, "one compute per (matrix, method)");
        assert!(compute.wall_ns > 0);
        let domains = trace
            .root
            .get(&["compute", "domain"])
            .expect("domain fan-out");
        assert!(domains.count >= compute.count, "at least one domain each");
        let out = trace.root.get(&["stream-out"]).expect("stream-out phase");
        assert_eq!(out.count, 56, "one emission per job");
    }

    #[test]
    fn sharded_profiles_match_direct_computation() {
        use locality_core::LocalityProfile;
        let nm = &corpus::corpus(1, 64, 2023)[0];
        let cfg = machine_for(&small_spec());
        let settings = locality_core::SectorSetting::paper_sweep();
        let direct = LocalityProfile::compute_for_sweep(&nm.matrix, &cfg, Method::A, 8, &settings);
        // Heuristic sharding (threads 8 → one domain, 4 workers) and every
        // explicit shard count must reproduce the direct profile exactly.
        let heuristic =
            compute_profile_parallel(&nm.matrix, &cfg, Method::A, 8, Some(&settings), 4);
        assert_eq!(heuristic, direct);
        for shards in [1, 2, 7, 64] {
            let sharded = compute_profile_sharded(
                &nm.matrix,
                &cfg,
                Method::A,
                8,
                Some(&settings),
                4,
                Some(shards),
            );
            assert_eq!(sharded, direct, "shards={shards}");
        }
        // Exact (untracked) and method (B) builders have nothing to shard
        // but must still accept the override.
        let exact = compute_profile_sharded(&nm.matrix, &cfg, Method::A, 8, None, 4, Some(8));
        assert_eq!(
            exact,
            LocalityProfile::compute(&nm.matrix, &cfg, Method::A, 8)
        );
        let b =
            compute_profile_sharded(&nm.matrix, &cfg, Method::B, 8, Some(&settings), 4, Some(8));
        assert_eq!(b, LocalityProfile::compute(&nm.matrix, &cfg, Method::B, 8));
    }

    #[test]
    fn spmm_k1_batches_are_byte_identical_to_spmv() {
        // The SpMM view with one right-hand side IS the plain SpMV: for
        // both storage formats, every worker count and both RHS layouts,
        // the batch output (names, fingerprints, predictions — the full
        // JSON bytes) must not change when the spec adds `rhs 1`.
        for format_line in ["", "format sell:8,32\n"] {
            let base_text = format!(
                "corpus count=3 scale=64 seed=11\n\
                 settings off,4\n\
                 threads 2\n\
                 scale 64\n\
                 {format_line}"
            );
            let reference = run_batch(&BatchSpec::parse(&base_text).unwrap()).unwrap();
            for rhs_line in ["rhs 1\n", "rhs 1 col\n"] {
                let mut spec = BatchSpec::parse(&format!("{base_text}{rhs_line}")).unwrap();
                assert!(matches!(spec.scenario, ScenarioSpec::Spmm { k: 1, .. }));
                for workers in [1, 4] {
                    spec.workers = workers;
                    let result = run_batch(&spec).unwrap();
                    assert_eq!(
                        result.to_json_lines(),
                        reference.to_json_lines(),
                        "format={format_line:?} rhs={rhs_line:?} workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn scenario_batches_tag_names_and_fingerprints() {
        let base = BatchSpec::parse(
            "corpus count=2 scale=64 seed=7\n\
             settings off\n\
             methods B\n\
             scale 64\n",
        )
        .unwrap();
        let reference = run_batch(&base).unwrap();
        let suite = corpus::corpus(2, 64, 7);

        let spmm = BatchSpec::parse(
            "corpus count=2 scale=64 seed=7\n\
             settings off\n\
             methods B\n\
             scale 64\n\
             rhs 16\n",
        )
        .unwrap();
        let result = run_batch(&spmm).unwrap();
        for (report, reference) in result.reports.iter().zip(&reference.reports) {
            let nm = &suite[report.id / spmm.jobs_per_matrix()];
            assert_eq!(report.matrix, format!("{}@rhs16", nm.name));
            assert_ne!(report.fingerprint, reference.fingerprint);
            // 16 RHS gathers per stored entry: the measured x traffic must
            // exceed the single-vector run's (k-fold reuse amplification).
            assert!(
                report.prediction.l2_misses >= reference.prediction.l2_misses,
                "{}: SpMM misses {} < SpMV misses {}",
                report.matrix,
                report.prediction.l2_misses,
                reference.prediction.l2_misses
            );
        }

        let cg = BatchSpec::parse(
            "corpus count=2 scale=64 seed=7\n\
             settings off\n\
             methods B\n\
             scale 64\n\
             workload cg\n",
        )
        .unwrap();
        let result = run_batch(&cg).unwrap();
        for (report, reference) in result.reports.iter().zip(&reference.reports) {
            let nm = &suite[report.id / cg.jobs_per_matrix()];
            assert_eq!(report.matrix, format!("{}@cg", nm.name));
            assert_ne!(report.fingerprint, reference.fingerprint);
        }

        // The separate-vectors layout keys and labels distinctly.
        let col = BatchSpec::parse(
            "corpus count=2 scale=64 seed=7\n\
             settings off\n\
             methods B\n\
             scale 64\n\
             rhs 16 col\n",
        )
        .unwrap();
        let col_result = run_batch(&col).unwrap();
        assert!(col_result.reports[0].matrix.ends_with("@rhs16:col"));
    }

    #[test]
    fn cg_over_non_square_mtx_is_a_typed_error() {
        let dir = std::env::temp_dir().join("locality-engine-cg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.mtx");
        let mut coo = sparsemat::CooMatrix::new(2, 5);
        coo.push(0, 4, 1.0);
        coo.push(1, 0, 1.0);
        let mut file = std::fs::File::create(&path).unwrap();
        sparsemat::mm::write_csr(&mut file, &coo.to_csr()).unwrap();
        drop(file);

        let spec = BatchSpec::parse(&format!(
            "mtx {}\nsettings off\nmethods B\nscale 64\nworkload cg\n",
            path.display()
        ))
        .unwrap();
        match run_batch(&spec) {
            Err(EngineError::Scenario { name, message }) => {
                assert_eq!(name, "wide");
                assert!(message.contains("square"), "{message}");
            }
            other => panic!("expected scenario error, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_stops_batch_and_streaming() {
        let spec = small_spec();
        let token = CancelToken::never();
        token.cancel();
        match run_batch_cancellable(&spec, &token) {
            Err(EngineError::Cancelled(Cancelled::Shutdown)) => {}
            other => panic!("expected shutdown cancellation, got {other:?}"),
        }
        let cache = ProfileCache::new();
        let mut emitted = 0usize;
        match run_streaming(&spec, &cache, &token, |_| emitted += 1) {
            Err(EngineError::Cancelled(Cancelled::Shutdown)) => {}
            other => panic!("expected shutdown cancellation, got {other:?}"),
        }
        assert_eq!(emitted, 0, "no report may be emitted after cancellation");
    }

    #[test]
    fn expired_deadline_reports_typed_error() {
        let spec = small_spec();
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        match run_batch_cancellable(&spec, &token) {
            Err(EngineError::Cancelled(Cancelled::DeadlineExceeded)) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        // The spec-level directive routes through the same machinery; a
        // generous budget completes normally.
        let mut roomy = small_spec();
        roomy.deadline_ms = Some(600_000);
        assert!(run_batch(&roomy).is_ok());
    }

    #[test]
    fn mtx_sources_load() {
        let dir = std::env::temp_dir().join("locality-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("diag4.mtx");
        let m = CsrMatrix::identity(4);
        let mut file = std::fs::File::create(&path).unwrap();
        sparsemat::mm::write_csr(&mut file, &m).unwrap();
        drop(file);

        let spec = BatchSpec::parse(&format!(
            "mtx {}\nsettings off\nmethods B\nscale 64\n",
            path.display()
        ))
        .unwrap();
        let result = run_batch(&spec).unwrap();
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].matrix, "diag4");
        assert_eq!(result.reports[0].fingerprint, m.fingerprint());
        assert_eq!(result.reports[0].nnz, 4);

        let missing = BatchSpec::parse("mtx /no/such/file.mtx\n").unwrap();
        assert!(matches!(
            run_batch(&missing),
            Err(EngineError::Matrix { .. })
        ));
    }

    #[test]
    fn cross_machine_sweep_runs_both_hierarchies() {
        let base = BatchSpec::parse(
            "corpus count=2 scale=16 seed=9\n\
             settings off,4\n\
             methods A\n\
             threads 2\n\
             scale 16\n",
        )
        .unwrap();
        let reference = run_batch(&base).unwrap();

        let swept = BatchSpec::parse(
            "corpus count=2 scale=16 seed=9\n\
             settings off,4\n\
             methods A\n\
             threads 2\n\
             scale 16\n\
             machine a64fx\n\
             machine generic-x86\n",
        )
        .unwrap();
        let result = run_batch(&swept).unwrap();
        // 2 matrices x 2 machines x 1 method x 2 settings.
        assert_eq!(result.reports.len(), 8);
        assert_eq!(result.stats.jobs, 2 * reference.stats.jobs);
        // One profile per (matrix, machine, method): the machine dimension
        // is NOT free — distinct hierarchies never share cache slots.
        assert_eq!(result.stats.profile_computations, 4);

        // Job order is matrix-outermost, machine next: even machine-block =
        // a64fx, odd = generic-x86.
        for (i, report) in result.reports.iter().enumerate() {
            let block = (i / swept.methods.len() / swept.settings.len()) % 2;
            if block == 0 {
                assert_eq!(report.machine, None, "job {i} should be default a64fx");
            } else {
                assert_eq!(report.machine.as_deref(), Some("generic-x86"), "job {i}");
            }
        }

        // The a64fx half is byte-identical to the machine-less run (modulo
        // the job ids, which now interleave the second machine).
        let a64fx_half: Vec<&Report> = result
            .reports
            .iter()
            .filter(|r| r.machine.is_none())
            .collect();
        assert_eq!(a64fx_half.len(), reference.reports.len());
        for (ours, legacy) in a64fx_half.iter().zip(&reference.reports) {
            assert_eq!(ours.prediction, legacy.prediction);
            assert_eq!(ours.matrix, legacy.matrix);
            assert_eq!(ours.fingerprint, legacy.fingerprint);
        }

        // The x86 hierarchy (64 B lines, one shared LLC) predicts
        // different miss counts than the a64fx (256 B lines) — the sweep
        // actually ran two machines, not one twice.
        let x86_half: Vec<&Report> = result
            .reports
            .iter()
            .filter(|r| r.machine.is_some())
            .collect();
        assert!(
            x86_half
                .iter()
                .zip(&a64fx_half)
                .any(|(x, a)| x.prediction.l2_misses != a.prediction.l2_misses),
            "generic-x86 predictions must differ from a64fx somewhere"
        );
    }

    #[test]
    fn projection_twins_do_not_share_profiles() {
        // A custom machine whose two-level projection agrees with the
        // a64fx preset on everything the legacy cache key carried
        // (line_bytes 256, cores_per_domain 12): before the machine tag,
        // these two machines would silently share profile slots.
        let spec = BatchSpec::parse(
            "corpus count=1 scale=64 seed=3\n\
             settings off\n\
             methods B\n\
             threads 1\n\
             scale 64\n\
             machine a64fx\n\
             machine custom:cores=1;domain=12;l1=64k,4,256;l2=8m,16,256;mem=200g\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        assert_eq!(result.stats.jobs, 2);
        assert_eq!(
            result.stats.profile_computations, 2,
            "identical projections on distinct hierarchies must not share cache slots"
        );
    }

    #[test]
    fn a64fx_preset_is_byte_identical_to_committed_oracle() {
        // The PR-2 batch spec and its output were committed before the
        // machine dimension existed. The refactored engine must reproduce
        // those bytes exactly — with no machine directive AND with the
        // a64fx preset spelled out.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let spec_text = std::fs::read_to_string(root.join("results/batch_pr2.spec")).unwrap();
        let oracle = std::fs::read_to_string(root.join("results/batch_pr2_oracle.jsonl")).unwrap();

        let implicit = run_batch(&BatchSpec::parse(&spec_text).unwrap()).unwrap();
        assert_eq!(implicit.to_json_lines(), oracle, "implicit a64fx default");

        let explicit_text = format!("{spec_text}machine a64fx\n");
        let explicit = run_batch(&BatchSpec::parse(&explicit_text).unwrap()).unwrap();
        assert_eq!(explicit.to_json_lines(), oracle, "explicit `machine a64fx`");
    }

    #[test]
    fn ecm_directive_attaches_estimates() {
        let spec = BatchSpec::parse(
            "corpus count=2 scale=64 seed=5\n\
             settings off,2\n\
             threads 4\n\
             scale 64\n\
             ecm on\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        for report in &result.reports {
            let ecm = report.ecm.as_ref().expect("ecm on attaches an estimate");
            assert!(ecm.gflops.is_finite() && ecm.gflops > 0.0, "{ecm:?}");
            assert!(ecm.t_total_s > 0.0);
            // a64fx composes serially: total = core + all link times.
            let links: f64 = ecm.links.iter().map(|(_, t)| t).sum();
            assert!(
                (ecm.t_total_s - (ecm.t_core_s + links)).abs() <= 1e-12 * ecm.t_total_s.max(1.0),
                "serial composition: {ecm:?}"
            );
            assert_eq!(ecm.links.last().unwrap().0, "mem");
            let line = report.to_json_line();
            assert!(line.contains(",\"ecm\":{\"gflops\":"), "{line}");
        }
        // Sector capping changes predicted misses, so the memory link —
        // and with it the ECM estimate — must respond per setting.
        let off = &result.reports[0];
        let capped = &result.reports[1];
        assert_eq!(off.setting, SectorSetting::Off);
        if off.prediction.l2_misses != capped.prediction.l2_misses {
            let (a, b) = (
                off.ecm.as_ref().unwrap().gflops,
                capped.ecm.as_ref().unwrap().gflops,
            );
            assert_ne!(a, b, "ECM must track the per-setting miss counts");
        }

        // Streaming attaches the same estimates.
        let cache = ProfileCache::new();
        let mut streamed = Vec::new();
        run_streaming(&spec, &cache, &CancelToken::never(), |r| {
            streamed.push(r.clone())
        })
        .unwrap();
        assert_eq!(streamed, result.reports);
    }

    #[test]
    fn generic_x86_ecm_overlaps_instead_of_summing() {
        let spec = BatchSpec::parse(
            "corpus count=1 scale=16 seed=5\n\
             settings off\n\
             methods B\n\
             threads 2\n\
             scale 16\n\
             machine generic-x86\n\
             ecm on\n",
        )
        .unwrap();
        let result = run_batch(&spec).unwrap();
        let report = &result.reports[0];
        assert_eq!(report.machine.as_deref(), Some("generic-x86"));
        let ecm = report.ecm.as_ref().unwrap();
        // Overlapped composition: the total is the slowest single stage,
        // not the sum.
        let slowest = ecm
            .links
            .iter()
            .map(|(_, t)| *t)
            .fold(ecm.t_core_s, f64::max);
        assert!(
            (ecm.t_total_s - slowest).abs() <= 1e-12 * slowest.max(1.0),
            "overlapped composition: {ecm:?}"
        );
        // Three cache levels + memory = links l1-l2, l2-l3, mem.
        let labels: Vec<&str> = ecm.links.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["l1-l2", "l2-l3", "mem"]);
    }
}
