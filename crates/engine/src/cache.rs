//! Fingerprint-keyed memoization of [`LocalityProfile`]s.
//!
//! The expensive part of a prediction is the trace analysis; evaluating a
//! profile at one more sector setting is nearly free. The cache therefore
//! keys on everything [`LocalityProfile::compute`] depends on — the
//! matrix's structural fingerprint, the method, the modeled thread count,
//! and the two machine parameters baked into a profile (line size and
//! domain width) — and deliberately **not** on the individual sector
//! setting, so a 7-setting sweep of one matrix costs one computation and
//! 6 hits. Sweep-restricted (marker-quantized) profiles additionally key
//! on the *fingerprint of their capacity grids* (`caps_fingerprint`; 0 =
//! capacity-independent exact profile), because such a profile only
//! answers at the capacities it tracked.
//!
//! Concurrent requests for the same key block on a shared [`OnceLock`]:
//! exactly one worker computes, the rest wait for the slot rather than
//! duplicating the work, so the computation count equals the number of
//! distinct keys regardless of scheduling.

use locality_core::{LocalityProfile, Method};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a memoized profile depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// The workload's format-tagged
    /// [`fingerprint`](locality_core::SpmvWorkload::fingerprint) (CSR
    /// keeps the legacy untagged
    /// [`CsrMatrix::fingerprint`](sparsemat::CsrMatrix::fingerprint)),
    /// further tagged by the batch's
    /// [`ReorderSpec`](locality_core::ReorderSpec) when one applies.
    pub fingerprint: u64,
    /// Model variant.
    pub method: Method,
    /// Modeled SpMV thread count.
    pub threads: usize,
    /// Cache line size the trace was folded to.
    pub line_bytes: usize,
    /// Cores per NUMA domain (thread-to-domain grouping).
    pub cores_per_domain: usize,
    /// [`locality_core::TrackedCaps::fingerprint`] of a sweep-restricted
    /// profile's capacity grids; 0 for capacity-independent (exact)
    /// profiles.
    pub caps_fingerprint: u64,
}

/// A thread-safe profile memo with hit/computation/eviction counters.
///
/// The default cache is unbounded — the engine relies on that for its
/// deterministic hit/computation summary (an eviction under memory
/// pressure would make `computations` scheduling-dependent). For
/// corpus-scale runs whose working set must be capped, [`Self::bounded`]
/// evicts the oldest-inserted entry once `max_entries` is exceeded and
/// counts each eviction.
#[derive(Debug, Default)]
pub struct ProfileCache {
    slots: Mutex<CacheMap>,
    max_entries: Option<usize>,
    hits: AtomicU64,
    computations: AtomicU64,
    evictions: AtomicU64,
}

/// Slot map plus FIFO insertion order (only maintained for bounded
/// caches; `order` stays empty otherwise).
#[derive(Debug, Default)]
struct CacheMap {
    map: HashMap<ProfileKey, Arc<OnceLock<Arc<LocalityProfile>>>>,
    order: std::collections::VecDeque<ProfileKey>,
}

impl ProfileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `max_entries` profiles, evicting
    /// the oldest-inserted entry beyond that. An evicted key that is
    /// requested again recomputes (and recounts as a computation).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn bounded(max_entries: usize) -> Self {
        assert!(max_entries > 0, "cache capacity must be positive");
        ProfileCache {
            max_entries: Some(max_entries),
            ..Self::default()
        }
    }

    /// Returns the profile for `key`, computing it with `compute` exactly
    /// once per key no matter how many threads ask concurrently.
    pub fn get_or_compute(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> LocalityProfile,
    ) -> Arc<LocalityProfile> {
        let _span = obs::span("cache.lookup");
        let slot = {
            let mut slots = self.slots.lock().expect("profile cache poisoned");
            match slots.map.get(&key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot: Arc<OnceLock<Arc<LocalityProfile>>> = Arc::default();
                    slots.map.insert(key, Arc::clone(&slot));
                    if let Some(max) = self.max_entries {
                        slots.order.push_back(key);
                        while slots.map.len() > max {
                            let oldest = slots.order.pop_front().expect("order tracks map");
                            slots.map.remove(&oldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    slot
                }
            }
        };
        let mut computed = false;
        let profile = slot.get_or_init(|| {
            computed = true;
            self.computations.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        });
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(profile)
    }

    /// Requests served from an already-(being-)computed slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Profiles actually computed (= distinct keys requested, for an
    /// unbounded cache).
    pub fn computations(&self) -> u64 {
        self.computations.load(Ordering::Relaxed)
    }

    /// Entries evicted by a [`bounded`](Self::bounded) cache (always 0
    /// for the default unbounded cache).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("profile cache poisoned").map.len()
    }

    /// Returns `true` if no profiles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reports the cache's counters and size through the telemetry
    /// counters/gauges (`engine.cache.*`). The cache is the single source
    /// of truth — callers don't keep a parallel tally.
    pub fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        obs::add("engine.cache.hits", self.hits());
        obs::add("engine.cache.computations", self.computations());
        obs::add("engine.cache.evictions", self.evictions());
        obs::gauge_max("engine.cache.size", self.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a64fx::MachineConfig;
    use sparsemat::CsrMatrix;

    fn key(fp: u64, method: Method) -> ProfileKey {
        ProfileKey {
            fingerprint: fp,
            method,
            threads: 1,
            line_bytes: 256,
            cores_per_domain: 12,
            caps_fingerprint: 0,
        }
    }

    fn profile() -> LocalityProfile {
        LocalityProfile::compute(
            &CsrMatrix::identity(64),
            &MachineConfig::a64fx_scaled(64),
            Method::B,
            1,
        )
    }

    #[test]
    fn computes_once_per_key() {
        let cache = ProfileCache::new();
        for _ in 0..5 {
            cache.get_or_compute(key(1, Method::A), profile);
        }
        cache.get_or_compute(key(1, Method::B), profile);
        cache.get_or_compute(key(2, Method::A), profile);
        assert_eq!(cache.computations(), 3);
        assert_eq!(cache.hits(), 4);
    }

    #[test]
    fn distinct_caps_fingerprints_get_distinct_slots() {
        // A sweep-restricted profile only answers at its own capacity
        // grid, so another grid must trigger a fresh computation.
        let cache = ProfileCache::new();
        let mut sweep_key = key(1, Method::A);
        sweep_key.caps_fingerprint = 0xfeed;
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(sweep_key, profile);
        cache.get_or_compute(sweep_key, profile);
        assert_eq!(cache.computations(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn bounded_cache_evicts_oldest_and_counts() {
        let cache = ProfileCache::bounded(2);
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(key(2, Method::A), profile);
        cache.get_or_compute(key(3, Method::A), profile); // evicts key 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Key 1 is gone: asking again recomputes; keys 2 and 3 remain
        // until the reinsertion pushes key 2 out.
        cache.get_or_compute(key(1, Method::A), profile);
        assert_eq!(cache.computations(), 4);
        assert_eq!(cache.evictions(), 2);
        cache.get_or_compute(key(3, Method::A), profile);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ProfileCache::new();
        for fp in 0..50 {
            cache.get_or_compute(key(fp, Method::B), profile);
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = ProfileCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for fp in 0..4 {
                        cache.get_or_compute(key(fp, Method::A), profile);
                    }
                });
            }
        });
        assert_eq!(cache.computations(), 4);
        assert_eq!(cache.hits(), 8 * 4 - 4);
    }
}
