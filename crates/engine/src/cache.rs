//! Fingerprint-keyed memoization of [`LocalityProfile`]s.
//!
//! The expensive part of a prediction is the trace analysis; evaluating a
//! profile at one more sector setting is nearly free. The cache therefore
//! keys on everything [`LocalityProfile::compute`] depends on — the
//! matrix's structural fingerprint, the method, the modeled thread count,
//! and the two machine parameters baked into a profile (line size and
//! domain width) — and deliberately **not** on the individual sector
//! setting, so a 7-setting sweep of one matrix costs one computation and
//! 6 hits. Sweep-restricted (marker-quantized) profiles additionally key
//! on the *fingerprint of their capacity grids* (`caps_fingerprint`; 0 =
//! capacity-independent exact profile), because such a profile only
//! answers at the capacities it tracked.
//!
//! Concurrent requests for the same key block on a shared [`OnceLock`]:
//! exactly one worker computes, the rest wait for the slot rather than
//! duplicating the work, so the computation count equals the number of
//! distinct keys regardless of scheduling.
//!
//! # Bounded modes
//!
//! The default cache is unbounded — the engine relies on that for its
//! deterministic hit/computation summary. Long-lived holders (the
//! `spmv-locality serve` daemon, whose cache is shared across every
//! client request) cap it with [`ProfileCache::bounded`], which evicts by
//! **LRU**: a key is touched on every lookup, and the coldest key goes
//! first. The pre-service **FIFO** behavior (evict oldest-inserted, never
//! touch) remains available through [`EvictionPolicy::Fifo`] and
//! [`ProfileCache::bounded_with`]. An optional [`Admission`] policy filters what
//! a bounded cache retains: [`Admission::SecondTouch`] computes but does
//! not cache a key on first sight, so one-off matrices cannot evict the
//! repeat customers that make a shared cache worthwhile.

use locality_core::{LocalityProfile, Method};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a memoized profile depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// The workload's format-tagged
    /// [`fingerprint`](locality_core::SpmvWorkload::fingerprint) (CSR
    /// keeps the legacy untagged
    /// [`CsrMatrix::fingerprint`](sparsemat::CsrMatrix::fingerprint)),
    /// further tagged by the batch's
    /// [`ReorderSpec`](locality_core::ReorderSpec) when one applies.
    pub fingerprint: u64,
    /// Model variant.
    pub method: Method,
    /// Modeled SpMV thread count.
    pub threads: usize,
    /// Cache line size the trace was folded to.
    pub line_bytes: usize,
    /// Cores per NUMA domain (thread-to-domain grouping).
    pub cores_per_domain: usize,
    /// [`locality_core::TrackedCaps::fingerprint`] of a sweep-restricted
    /// profile's capacity grids; 0 for capacity-independent (exact)
    /// profiles.
    pub caps_fingerprint: u64,
    /// [`machine::CacheHierarchy::fingerprint`] of the machine the
    /// profile was computed for. Distinct hierarchies must never share a
    /// cache slot even when their projections agree on `line_bytes` and
    /// `cores_per_domain` (they can still differ in L1 capacity, sector
    /// policy, ...). 0 for machine-agnostic callers that key their cache
    /// some other way.
    pub machine_tag: u64,
}

/// How a bounded cache picks its victim once full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently *used* key (every lookup is a touch).
    /// The right policy for a cross-request cache with repeat customers.
    #[default]
    Lru,
    /// Evict the oldest-*inserted* key regardless of use — the original
    /// bounded-cache behavior, kept for batch runs that want a strict
    /// working-set cap with insertion-order accounting.
    Fifo,
}

/// Whether a bounded cache retains a key it has never seen before.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Every computed profile is cached.
    #[default]
    Always,
    /// A first-seen key is computed and returned but *not* cached; the
    /// key is remembered in a doorkeeper set and admitted on its second
    /// request. Scan-resistant: a stream of one-off matrices cannot
    /// flush the repeatedly-requested profiles a shared cache exists for.
    SecondTouch,
}

/// The outcome of a cache lookup that may be cancelled mid-computation.
#[derive(Clone, Debug)]
pub struct CacheLookup {
    /// The (possibly shared) profile.
    pub profile: Arc<LocalityProfile>,
    /// `true` if this lookup was served from an existing slot, `false`
    /// if the calling thread computed the profile itself.
    pub hit: bool,
}

/// A thread-safe profile memo with hit/computation/eviction counters.
///
/// The default cache is unbounded — the engine relies on that for its
/// deterministic hit/computation summary (an eviction under memory
/// pressure would make `computations` scheduling-dependent). For
/// long-lived or corpus-scale holders, [`Self::bounded`] caps entries
/// with LRU eviction; [`Self::bounded_with`] selects the policy.
#[derive(Debug, Default)]
pub struct ProfileCache {
    slots: Mutex<CacheMap>,
    max_entries: Option<usize>,
    policy: EvictionPolicy,
    admission: Admission,
    hits: AtomicU64,
    computations: AtomicU64,
    evictions: AtomicU64,
    admission_skips: AtomicU64,
    cancellations: AtomicU64,
}

type Slot = Arc<OnceLock<Option<Arc<LocalityProfile>>>>;

/// Slot map plus the eviction order (only maintained for bounded caches;
/// `order` stays empty otherwise). Under FIFO `order` is insertion order;
/// under LRU it is recency order (front = coldest). `doorkeeper` is the
/// [`Admission::SecondTouch`] memory of first-seen keys.
#[derive(Debug, Default)]
struct CacheMap {
    map: HashMap<ProfileKey, Slot>,
    order: VecDeque<ProfileKey>,
    doorkeeper: HashSet<ProfileKey>,
}

impl CacheMap {
    /// Moves `key` to the warm end of the recency order (LRU only; the
    /// order deque is at most `max_entries` long, so the linear scan is
    /// bounded and trivial next to a profile computation).
    fn touch(&mut self, key: &ProfileKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(*key);
        }
    }

    /// Drops `key`'s slot (and order entry) if the resident slot is still
    /// `slot` — a cancelled computation must not tear out a slot that
    /// eviction already replaced with a newer incarnation.
    fn remove_if_same(&mut self, key: &ProfileKey, slot: &Slot) {
        if let Some(resident) = self.map.get(key) {
            if Arc::ptr_eq(resident, slot) {
                self.map.remove(key);
                if let Some(pos) = self.order.iter().position(|k| k == key) {
                    self.order.remove(pos);
                }
            }
        }
    }
}

/// What the locked lookup phase decided to do with a key.
enum Placement {
    /// Wait on (or compute into) this shared slot.
    Slot(Slot),
    /// Admission declined to cache: compute privately, return uncached.
    Bypass,
}

impl ProfileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `max_entries` profiles, evicting
    /// the least-recently-used entry beyond that. An evicted key that is
    /// requested again recomputes (and recounts as a computation).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn bounded(max_entries: usize) -> Self {
        Self::bounded_with(max_entries, EvictionPolicy::Lru)
    }

    /// An empty bounded cache with an explicit eviction policy
    /// ([`EvictionPolicy::Fifo`] recovers the pre-LRU behavior).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn bounded_with(max_entries: usize, policy: EvictionPolicy) -> Self {
        assert!(max_entries > 0, "cache capacity must be positive");
        ProfileCache {
            max_entries: Some(max_entries),
            policy,
            ..Self::default()
        }
    }

    /// Sets the admission policy (builder-style; meaningful only for
    /// bounded caches — an unbounded cache always admits).
    pub fn with_admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Returns the profile for `key`, computing it with `compute` exactly
    /// once per key no matter how many threads ask concurrently.
    pub fn get_or_compute(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> LocalityProfile,
    ) -> Arc<LocalityProfile> {
        self.get_or_try_compute(key, || Some(compute()))
            .expect("infallible compute cannot be cancelled")
            .profile
    }

    /// Cancellable [`get_or_compute`](Self::get_or_compute): `compute`
    /// may give up (cooperative cancellation) by returning `None`, which
    /// releases the slot so a later request for the same key retries
    /// cleanly. Returns `None` only when *this* call's computation was
    /// the one cancelled; a waiter whose computer was cancelled retries
    /// the lookup (and may become the computer itself).
    pub fn get_or_try_compute(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> Option<LocalityProfile>,
    ) -> Option<CacheLookup> {
        let _span = obs::span("cache.lookup");
        let mut compute = Some(compute);
        loop {
            let placement = {
                let mut slots = self.slots.lock().expect("profile cache poisoned");
                match slots.map.get(&key).map(Arc::clone) {
                    Some(slot) => {
                        if self.max_entries.is_some() && self.policy == EvictionPolicy::Lru {
                            slots.touch(&key);
                        }
                        Placement::Slot(slot)
                    }
                    None if !self.admits(&mut slots, &key) => {
                        self.admission_skips.fetch_add(1, Ordering::Relaxed);
                        Placement::Bypass
                    }
                    None => {
                        let slot: Slot = Arc::default();
                        slots.map.insert(key, Arc::clone(&slot));
                        if let Some(max) = self.max_entries {
                            slots.order.push_back(key);
                            while slots.map.len() > max {
                                let coldest = slots.order.pop_front().expect("order tracks map");
                                slots.map.remove(&coldest);
                                self.evictions.fetch_add(1, Ordering::Relaxed);
                                obs::events::record("cache.evict", || {
                                    format!(
                                        "fingerprint={:#018x} method={:?} machine_tag={:#x}",
                                        coldest.fingerprint, coldest.method, coldest.machine_tag
                                    )
                                });
                            }
                        }
                        Placement::Slot(slot)
                    }
                }
            };
            let slot = match placement {
                Placement::Slot(slot) => slot,
                Placement::Bypass => {
                    let f = compute.take().expect("bypass precedes any computation");
                    return match f() {
                        Some(profile) => {
                            self.computations.fetch_add(1, Ordering::Relaxed);
                            Some(CacheLookup {
                                profile: Arc::new(profile),
                                hit: false,
                            })
                        }
                        None => {
                            self.cancellations.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    };
                }
            };
            let mut computed = false;
            let value = slot.get_or_init(|| {
                computed = true;
                let f = compute.take().expect("a thread computes at most once");
                match f() {
                    Some(profile) => {
                        self.computations.fetch_add(1, Ordering::Relaxed);
                        Some(Arc::new(profile))
                    }
                    None => None,
                }
            });
            match (computed, value) {
                (_, Some(profile)) => {
                    if !computed {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(CacheLookup {
                        profile: Arc::clone(profile),
                        hit: !computed,
                    });
                }
                (true, None) => {
                    // Our own computation was cancelled: release the slot
                    // so the key stays computable, and report cancelled.
                    let mut slots = self.slots.lock().expect("profile cache poisoned");
                    slots.remove_if_same(&key, &slot);
                    self.cancellations.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                (false, None) => {
                    // We waited on a computation that was cancelled. Make
                    // sure the dead slot is gone, then retry — our own
                    // `compute` is still unused.
                    let mut slots = self.slots.lock().expect("profile cache poisoned");
                    slots.remove_if_same(&key, &slot);
                }
            }
        }
    }

    /// Whether a new `key` may occupy a slot. Called with the map locked
    /// and `key` absent from it.
    fn admits(&self, slots: &mut CacheMap, key: &ProfileKey) -> bool {
        if self.max_entries.is_none() || self.admission == Admission::Always {
            return true;
        }
        if slots.doorkeeper.remove(key) {
            return true;
        }
        // Remember the first touch; cap the doorkeeper so a one-off-only
        // workload cannot grow it without bound.
        let cap = self.max_entries.unwrap_or(usize::MAX).saturating_mul(8);
        if slots.doorkeeper.len() >= cap {
            slots.doorkeeper.clear();
        }
        slots.doorkeeper.insert(*key);
        false
    }

    /// Requests served from an already-(being-)computed slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Profiles actually computed (= distinct keys requested, for an
    /// unbounded cache).
    pub fn computations(&self) -> u64 {
        self.computations.load(Ordering::Relaxed)
    }

    /// Entries evicted by a [`bounded`](Self::bounded) cache (always 0
    /// for the default unbounded cache).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Computations that ran uncached because [`Admission::SecondTouch`]
    /// declined a first-seen key.
    pub fn admission_skips(&self) -> u64 {
        self.admission_skips.load(Ordering::Relaxed)
    }

    /// Lookups abandoned by cooperative cancellation
    /// ([`get_or_try_compute`](Self::get_or_try_compute) returning `None`).
    pub fn cancellations(&self) -> u64 {
        self.cancellations.load(Ordering::Relaxed)
    }

    /// Completed lookups (hits + computations; cancellations excluded).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.computations()
    }

    /// Hit rate over completed lookups, in percent (0 when idle). This is
    /// the serve-path SLO number: a shared cross-request cache earns its
    /// memory by keeping this high.
    pub fn hit_rate_pct(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        100.0 * self.hits() as f64 / lookups as f64
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("profile cache poisoned").map.len()
    }

    /// Returns `true` if no profiles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reports the cache's counters and size through the telemetry
    /// counters/gauges (`engine.cache.*`). The cache is the single source
    /// of truth — callers don't keep a parallel tally. Call once per
    /// cache lifetime (the counters are totals, so repeated flushes of a
    /// long-lived cache would double-count; the serve daemon reports its
    /// shared cache through the `STATUS` document instead and flushes
    /// once at shutdown).
    pub fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        obs::add("engine.cache.hits", self.hits());
        obs::add("engine.cache.computations", self.computations());
        obs::add("engine.cache.evictions", self.evictions());
        obs::add("engine.cache.admission_skips", self.admission_skips());
        obs::add("engine.cache.cancellations", self.cancellations());
        obs::gauge_max("engine.cache.size", self.len() as u64);
        obs::gauge_max("engine.cache.hit_rate_pct", self.hit_rate_pct() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a64fx::MachineConfig;
    use sparsemat::CsrMatrix;

    fn key(fp: u64, method: Method) -> ProfileKey {
        ProfileKey {
            fingerprint: fp,
            method,
            threads: 1,
            line_bytes: a64fx::A64FX_LINE_BYTES,
            cores_per_domain: 12,
            caps_fingerprint: 0,
            machine_tag: 0,
        }
    }

    fn profile() -> LocalityProfile {
        LocalityProfile::compute(
            &CsrMatrix::identity(64),
            &MachineConfig::a64fx_scaled(64),
            Method::B,
            1,
        )
    }

    #[test]
    fn computes_once_per_key() {
        let cache = ProfileCache::new();
        for _ in 0..5 {
            cache.get_or_compute(key(1, Method::A), profile);
        }
        cache.get_or_compute(key(1, Method::B), profile);
        cache.get_or_compute(key(2, Method::A), profile);
        assert_eq!(cache.computations(), 3);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.lookups(), 7);
        assert!((cache.hit_rate_pct() - 400.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_caps_fingerprints_get_distinct_slots() {
        // A sweep-restricted profile only answers at its own capacity
        // grid, so another grid must trigger a fresh computation.
        let cache = ProfileCache::new();
        let mut sweep_key = key(1, Method::A);
        sweep_key.caps_fingerprint = 0xfeed;
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(sweep_key, profile);
        cache.get_or_compute(sweep_key, profile);
        assert_eq!(cache.computations(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn bounded_fifo_cache_evicts_oldest_and_counts() {
        let cache = ProfileCache::bounded_with(2, EvictionPolicy::Fifo);
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(key(2, Method::A), profile);
        cache.get_or_compute(key(3, Method::A), profile); // evicts key 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Key 1 is gone: asking again recomputes; keys 2 and 3 remain
        // until the reinsertion pushes key 2 out.
        cache.get_or_compute(key(1, Method::A), profile);
        assert_eq!(cache.computations(), 4);
        assert_eq!(cache.evictions(), 2);
        cache.get_or_compute(key(3, Method::A), profile);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn bounded_lru_eviction_spares_touched_keys() {
        // FIFO would evict key 1 here; LRU must evict key 2, because
        // key 1 was touched after key 2's insertion.
        let cache = ProfileCache::bounded(2);
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(key(2, Method::A), profile);
        cache.get_or_compute(key(1, Method::A), profile); // touch 1
        cache.get_or_compute(key(3, Method::A), profile); // evicts 2
        assert_eq!(cache.evictions(), 1);
        // 1 and 3 are resident: both hit without recomputation.
        cache.get_or_compute(key(1, Method::A), profile);
        cache.get_or_compute(key(3, Method::A), profile);
        assert_eq!(cache.computations(), 3, "keys 1/2/3 computed once each");
        // 2 was the victim: asking again recomputes.
        cache.get_or_compute(key(2, Method::A), profile);
        assert_eq!(cache.computations(), 4);
    }

    #[test]
    fn second_touch_admission_filters_one_off_keys() {
        let cache = ProfileCache::bounded_with(4, EvictionPolicy::Lru)
            .with_admission(Admission::SecondTouch);
        // First sight: computed but not cached.
        cache.get_or_compute(key(1, Method::A), profile);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.admission_skips(), 1);
        assert_eq!(cache.computations(), 1);
        // Second sight: admitted (recomputes once, then hits).
        cache.get_or_compute(key(1, Method::A), profile);
        assert_eq!(cache.len(), 1);
        cache.get_or_compute(key(1, Method::A), profile);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.computations(), 2);
        // A stream of one-offs leaves the resident set untouched.
        for fp in 100..120 {
            cache.get_or_compute(key(fp, Method::B), profile);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ProfileCache::new();
        for fp in 0..50 {
            cache.get_or_compute(key(fp, Method::B), profile);
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cancelled_computation_releases_the_slot() {
        let cache = ProfileCache::new();
        // A compute that gives up must not poison the key...
        assert!(cache
            .get_or_try_compute(key(9, Method::A), || None)
            .is_none());
        assert_eq!(cache.cancellations(), 1);
        assert_eq!(cache.len(), 0);
        // ...a later request computes normally.
        let lookup = cache
            .get_or_try_compute(key(9, Method::A), || Some(profile()))
            .expect("second attempt succeeds");
        assert!(!lookup.hit);
        assert_eq!(cache.computations(), 1);
        // And now it hits.
        let lookup = cache
            .get_or_try_compute(key(9, Method::A), || Some(profile()))
            .expect("hit");
        assert!(lookup.hit);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = ProfileCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for fp in 0..4 {
                        cache.get_or_compute(key(fp, Method::A), profile);
                    }
                });
            }
        });
        assert_eq!(cache.computations(), 4);
        assert_eq!(cache.hits(), 8 * 4 - 4);
    }

    #[test]
    fn waiters_on_a_cancelled_computer_retry_and_succeed() {
        use std::sync::atomic::{AtomicBool, AtomicU64};
        let cache = ProfileCache::new();
        let successes = AtomicU64::new(0);
        // Thread 0 is guaranteed to be the computer: the other threads
        // only start their lookup once thread 0 is inside its compute
        // closure (which then gives up), so they block as waiters, see
        // the cancelled slot, and retry.
        let computing = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let cancelled = scope.spawn(|| {
                cache
                    .get_or_try_compute(key(5, Method::B), || {
                        computing.store(true, Ordering::Release);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        None
                    })
                    .is_none()
            });
            for _ in 0..5 {
                scope.spawn(|| {
                    while !computing.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    if cache
                        .get_or_try_compute(key(5, Method::B), || Some(profile()))
                        .is_some()
                    {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            assert!(cancelled.join().expect("no panic"), "computer reports None");
        });
        // Exactly the cancelled thread fails; everyone else gets a profile.
        assert_eq!(successes.load(Ordering::Relaxed), 5);
        assert_eq!(cache.cancellations(), 1);
        let lookup = cache
            .get_or_try_compute(key(5, Method::B), || Some(profile()))
            .expect("key remains computable");
        assert!(lookup.hit, "profile is resident after the retries");
    }
}
