//! The merged view of all collectors: counters, gauges, histograms, span
//! forest, RSS checkpoints.

use crate::hist::Hist;
use std::collections::BTreeMap;

/// Aggregated statistics for one span name at one position in the tree.
///
/// Spans are keyed by their *name path* — all same-named spans under the
/// same parent merge into one node, summing counts and wall times.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SpanStats {
    /// Times the span was opened and closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all openings.
    pub wall_ns: u64,
    /// Child spans keyed by name (BTreeMap for stable output order).
    pub children: BTreeMap<String, SpanStats>,
}

impl SpanStats {
    /// Recursively merges `other` into `self` (sums, name-keyed children).
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.wall_ns += other.wall_ns;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().merge(child);
        }
    }
}

/// One peak-RSS observation, labelled by where in the run it was taken.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Caller-supplied position label (e.g. `"start"`, `"end"`).
    pub label: String,
    /// `VmHWM` in kB, or `None` where `/proc/self/status` is unavailable.
    pub vm_hwm_kb: Option<u64>,
}

/// Everything the telemetry subsystem collected, merged across threads.
///
/// All maps are `BTreeMap` so iteration (and therefore the serialized
/// metrics document) has a stable order independent of hashing or merge
/// order. `merge` is commutative in every field except `checkpoints`,
/// which append — checkpoints are only taken from the coordinating
/// thread, so order is program order.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Aggregate {
    /// Monotonic event counters, merged by sum.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges, merged by max.
    pub gauges: BTreeMap<String, u64>,
    /// Log2-bucketed sample distributions, merged bucket-wise.
    pub histograms: BTreeMap<String, Hist>,
    /// Top-level spans of the merged forest.
    pub roots: BTreeMap<String, SpanStats>,
    /// Peak-RSS checkpoints in the order they were taken.
    pub checkpoints: Vec<Checkpoint>,
}

impl Aggregate {
    /// The named counter's value, 0 if it was never touched. Convenience
    /// for consumers (the serve `STATUS` endpoint, tests) that read a few
    /// known counters out of a snapshot.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's high-watermark, 0 if it was never raised.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &Aggregate) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (name, span) in &other.roots {
            self.roots.entry(name.clone()).or_default().merge(span);
        }
        self.checkpoints.extend(other.checkpoints.iter().cloned());
    }

    /// The aggregate with wall-clock and schedule-dependent data removed:
    /// span `wall_ns` zeroed and gauges/checkpoints cleared. Two runs of
    /// the same deterministic workload must produce equal stripped
    /// aggregates regardless of worker count — tests assert exactly that.
    pub fn deterministic_view(&self) -> Aggregate {
        fn strip(span: &SpanStats) -> SpanStats {
            SpanStats {
                count: span.count,
                wall_ns: 0,
                children: span
                    .children
                    .iter()
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect(),
            }
        }
        Aggregate {
            counters: self.counters.clone(),
            gauges: BTreeMap::new(),
            histograms: self.histograms.clone(),
            roots: self
                .roots
                .iter()
                .map(|(k, v)| (k.clone(), strip(v)))
                .collect(),
            checkpoints: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Aggregate {
        let mut a = Aggregate::default();
        a.counters.insert("c".into(), n);
        a.gauges.insert("g".into(), n);
        let mut h = Hist::default();
        h.record(n);
        a.histograms.insert("h".into(), h);
        let child = SpanStats {
            count: n,
            wall_ns: n * 10,
            ..SpanStats::default()
        };
        let mut root = SpanStats {
            count: 1,
            wall_ns: n * 100,
            ..SpanStats::default()
        };
        root.children.insert("child".into(), child);
        a.roots.insert("root".into(), root);
        a
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_recurses_spans() {
        let mut acc = sample(2);
        acc.merge(&sample(5));
        assert_eq!(acc.counters["c"], 7);
        assert_eq!(acc.gauges["g"], 5);
        assert_eq!(acc.histograms["h"].count, 2);
        assert_eq!(acc.roots["root"].count, 2);
        assert_eq!(acc.roots["root"].wall_ns, 700);
        assert_eq!(acc.roots["root"].children["child"].count, 7);
    }

    #[test]
    fn deterministic_view_strips_time_and_schedule_data() {
        let mut a = sample(3);
        a.checkpoints.push(Checkpoint {
            label: "start".into(),
            vm_hwm_kb: Some(123),
        });
        let mut b = sample(3);
        b.roots.get_mut("root").unwrap().wall_ns = 999_999;
        b.gauges.insert("g".into(), 7777);
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        assert!(a.deterministic_view().checkpoints.is_empty());
    }
}
