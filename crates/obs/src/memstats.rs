//! Process memory statistics from `/proc/self/status`.
//!
//! Shared by the metrics document's RSS checkpoints and the bench
//! binaries (which previously each carried their own parser that silently
//! reported 0 when the field was missing — here absence is an explicit
//! `None` so reports can say `null` instead of lying).

use std::path::Path;

/// The status file the default accessors read.
pub const PROC_SELF_STATUS: &str = "/proc/self/status";

/// Peak resident set size (`VmHWM`) in kB, or `None` where
/// `/proc/self/status` or the field is unavailable (e.g. non-Linux).
pub fn vm_hwm_kb() -> Option<u64> {
    vm_hwm_kb_at(Path::new(PROC_SELF_STATUS))
}

/// Current resident set size (`VmRSS`) in kB, or `None` when unavailable.
pub fn vm_rss_kb() -> Option<u64> {
    vm_rss_kb_at(Path::new(PROC_SELF_STATUS))
}

/// [`vm_hwm_kb`] reading an explicit status file. The path parameter is
/// what makes the unavailable-`/proc` branch testable on Linux: a
/// nonexistent path must yield `None` (recorded downstream as an explicit
/// `null`), never 0 and never a skipped record.
pub fn vm_hwm_kb_at(status_path: &Path) -> Option<u64> {
    status_field_kb(status_path, "VmHWM:")
}

/// [`vm_rss_kb`] reading an explicit status file; see [`vm_hwm_kb_at`].
pub fn vm_rss_kb_at(status_path: &Path) -> Option<u64> {
    status_field_kb(status_path, "VmRSS:")
}

fn status_field_kb(path: &Path, field: &str) -> Option<u64> {
    parse_status_field(&std::fs::read_to_string(path).ok()?, field)
}

/// Extracts a `kB`-valued field (e.g. `"VmHWM:"`) from the text of a
/// `/proc/<pid>/status` file. Split out for testability.
pub fn parse_status_field(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Name:\tspmv\nVmPeak:\t  200000 kB\nVmHWM:\t   12345 kB\nVmRSS:\t    9876 kB\nThreads:\t4\n";

    #[test]
    fn parses_present_fields() {
        assert_eq!(parse_status_field(SAMPLE, "VmHWM:"), Some(12345));
        assert_eq!(parse_status_field(SAMPLE, "VmRSS:"), Some(9876));
    }

    #[test]
    fn missing_field_is_none_not_zero() {
        assert_eq!(parse_status_field(SAMPLE, "VmSwap:"), None);
        assert_eq!(parse_status_field("", "VmHWM:"), None);
    }

    #[test]
    fn malformed_value_is_none() {
        assert_eq!(parse_status_field("VmHWM:\tgarbage kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_field("VmHWM:\n", "VmHWM:"), None);
    }

    #[test]
    fn nonexistent_status_path_is_none_not_zero() {
        let missing = Path::new("/nonexistent/proc/self/status");
        assert_eq!(vm_hwm_kb_at(missing), None);
        assert_eq!(vm_rss_kb_at(missing), None);
    }

    #[test]
    fn explicit_status_path_reads_like_the_default() {
        let path = std::env::temp_dir().join(format!("spmv-obs-memstats-{}", std::process::id()));
        std::fs::write(&path, SAMPLE).expect("temp status file");
        assert_eq!(vm_hwm_kb_at(&path), Some(12345));
        assert_eq!(vm_rss_kb_at(&path), Some(9876));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_read_is_consistent_when_available() {
        // On Linux both fields exist and a live process has nonzero
        // peak RSS; elsewhere both are None. Either way: no panic, no 0.
        match (vm_hwm_kb(), vm_rss_kb()) {
            (Some(hwm), Some(rss)) => {
                assert!(hwm > 0);
                assert!(rss > 0);
            }
            (None, None) => {}
            other => panic!("inconsistent availability: {other:?}"),
        }
    }
}
