//! Prometheus text exposition (version 0.0.4) for an [`Aggregate`].
//!
//! [`render`] maps the aggregate onto the three metric families scrape
//! pipelines understand — counters, gauges, and histograms — with every
//! metric name prefixed `spmv_` and dots mapped to underscores. Log2
//! histogram buckets become cumulative `_bucket` lines: our bucket `b`
//! holds values in `[2^(b-1), 2^b)`, so the cumulative count through
//! bucket `b` is exactly the count of samples `<= 2^b - 1`, which is a
//! legal inclusive `le` boundary.
//!
//! [`check`] is the matching consumer: a strict-enough parser that the
//! test suite (and the ci smoke's python client, which mirrors it)
//! round-trips rendered output through, verifying line syntax, family
//! typing, cumulative-monotonic buckets and the mandatory `+Inf`
//! terminal bucket.

use crate::aggregate::Aggregate;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps an aggregate name (`engine.cache.hits`) to an exposition metric
/// name (`spmv_engine_cache_hits`): `spmv_` prefix, every character
/// outside `[a-zA-Z0-9_]` becomes `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("spmv_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `agg` in the text exposition format: counters and gauges as
/// single samples, histograms as cumulative `_bucket`/`_sum`/`_count`
/// families. Span trees and RSS checkpoints have no exposition analogue
/// and are omitted (they stay in the JSON metrics document).
pub fn render(agg: &Aggregate) -> String {
    let mut out = String::new();
    for (name, value) in &agg.counters {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, value) in &agg.gauges {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, hist) in &agg.histograms {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for (b, &n) in hist.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            // Inclusive upper bound of bucket b: 0 for the zero bucket,
            // else 2^b - 1 (the largest value whose highest set bit is
            // b-1). u64::MAX when b = 64.
            let le = if b == 0 {
                0
            } else if b == 64 {
                u64::MAX
            } else {
                (1u64 << b) - 1
            };
            let _ = writeln!(out, "{m}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{m}_sum {}", hist.sum);
        let _ = writeln!(out, "{m}_count {}", hist.count);
    }
    out
}

/// A parsed sample line: metric name, optional `le` label, value.
struct SampleLine<'a> {
    name: &'a str,
    le: Option<&'a str>,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<SampleLine<'_>, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let (name_part, value_part) = match line.find(' ') {
        // A labelled name contains the space inside {...}; split at the
        // last space instead so `name{le="+Inf"} 3` parses.
        Some(_) => line.rsplit_once(' ').expect("found above"),
        None => return Err(err("expected 'name value'")),
    };
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        v => v
            .parse::<f64>()
            .map_err(|_| err("unparsable sample value"))?,
    };
    let (name, le) = match name_part.split_once('{') {
        None => (name_part, None),
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| err("only le=\"...\" labels are rendered"))?;
            (name, Some(le))
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(err("invalid metric name"));
    }
    Ok(SampleLine { name, le, value })
}

/// Validates exposition text: every line is a comment (`# TYPE`/`# HELP`)
/// or a sample; histogram families have cumulative non-decreasing
/// buckets ending in `le="+Inf"` whose value equals `_count`, plus a
/// `_sum`. Returns the number of sample lines.
pub fn check(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    // Histogram family -> (bucket values in order, saw +Inf, count, sum).
    struct HistState {
        buckets: Vec<f64>,
        inf: Option<f64>,
        count: Option<f64>,
        sum: bool,
    }
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without name"))?;
                    let family = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without family"))?;
                    if !matches!(
                        family,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown family {family:?}"));
                    }
                    types.insert(name, family);
                    if family == "histogram" {
                        hists.insert(
                            name.to_string(),
                            HistState {
                                buckets: Vec::new(),
                                inf: None,
                                count: None,
                                sum: false,
                            },
                        );
                    }
                }
                Some("HELP") => {}
                _ => return Err(format!("line {lineno}: unrecognized comment: {line:?}")),
            }
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        samples += 1;
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| sample.name.strip_suffix(s).map(|f| (f, *s)))
            .filter(|(f, _)| hists.contains_key(*f))
            .unzip();
        let Some(state) = family.and_then(|f| hists.get_mut(f)) else {
            if sample.le.is_some() {
                return Err(format!("line {lineno}: le label outside a histogram"));
            }
            continue;
        };
        match suffix.expect("suffix set with family") {
            "_bucket" => {
                let le = sample
                    .le
                    .ok_or_else(|| format!("line {lineno}: _bucket without le"))?;
                if le == "+Inf" {
                    state.inf = Some(sample.value);
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {lineno}: unparsable le {le:?}"))?;
                    if state.inf.is_some() {
                        return Err(format!("line {lineno}: bucket after +Inf"));
                    }
                    state.buckets.push(sample.value);
                }
            }
            "_sum" => state.sum = true,
            "_count" => state.count = Some(sample.value),
            _ => unreachable!(),
        }
    }
    for (name, state) in &hists {
        let inf = state
            .inf
            .ok_or_else(|| format!("histogram {name}: missing le=\"+Inf\" bucket"))?;
        let count = state
            .count
            .ok_or_else(|| format!("histogram {name}: missing _count"))?;
        if !state.sum {
            return Err(format!("histogram {name}: missing _sum"));
        }
        if inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} != _count {count}"
            ));
        }
        let mut prev = 0.0f64;
        for (i, &b) in state.buckets.iter().enumerate() {
            if b < prev {
                return Err(format!(
                    "histogram {name}: bucket {i} not cumulative ({b} < {prev})"
                ));
            }
            prev = b;
        }
        if state.buckets.last().is_some_and(|&b| b > inf) {
            return Err(format!("histogram {name}: bucket exceeds +Inf"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;

    fn sample_aggregate() -> Aggregate {
        let mut agg = Aggregate::default();
        agg.counters.insert("serve.requests".into(), 7);
        agg.counters.insert("engine.cache.hits".into(), 104);
        agg.gauges.insert("serve.queue_depth".into(), 3);
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(900);
        agg.histograms.insert("serve.phase.compute_ns".into(), h);
        agg
    }

    #[test]
    fn render_round_trips_the_checker() {
        let text = render(&sample_aggregate());
        let samples = check(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // 2 counters + 1 gauge + (4 finite buckets + Inf + sum + count).
        assert_eq!(samples, 10, "{text}");
        for needle in [
            "# TYPE spmv_serve_requests counter",
            "spmv_serve_requests 7",
            "# TYPE spmv_serve_queue_depth gauge",
            "# TYPE spmv_serve_phase_compute_ns histogram",
            "spmv_serve_phase_compute_ns_bucket{le=\"0\"} 1",
            "spmv_serve_phase_compute_ns_bucket{le=\"1\"} 2",
            "spmv_serve_phase_compute_ns_bucket{le=\"3\"} 3",
            "spmv_serve_phase_compute_ns_bucket{le=\"+Inf\"} 4",
            "spmv_serve_phase_compute_ns_sum 904",
            "spmv_serve_phase_compute_ns_count 4",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // 900 lives in bucket 10 ([512, 1024)) -> le = 1023, cumulative 4.
        assert!(text.contains("_bucket{le=\"1023\"} 4"), "{text}");
    }

    #[test]
    fn checker_rejects_broken_histograms() {
        let ok = render(&sample_aggregate());
        // Break cumulativity: shrink a later bucket below an earlier one.
        let broken = ok.replace("{le=\"1023\"} 4", "{le=\"1023\"} 1");
        assert!(check(&broken).unwrap_err().contains("not cumulative"));
        // Drop the +Inf bucket.
        let no_inf: String = ok
            .lines()
            .filter(|l| !l.contains("+Inf"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(check(&no_inf).unwrap_err().contains("+Inf"));
        // Mismatched count.
        let bad_count = ok.replace("_count 4", "_count 5");
        assert!(check(&bad_count).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(check("just words\n").is_err());
        assert!(check("9leading_digit 1\n").is_err());
        assert!(check("name{le=\"1\"} 1\n").is_err(), "le outside histogram");
        assert!(check("# WAT x y\n").is_err());
        assert!(check("name nope\n").is_err());
        assert!(check("").is_ok());
        assert!(check("# HELP spmv_x something\n# TYPE spmv_x counter\nspmv_x 1\n").is_ok());
    }

    #[test]
    fn u64_max_bucket_has_a_finite_le() {
        let mut agg = Aggregate::default();
        let mut h = Hist::default();
        h.record(u64::MAX);
        agg.histograms.insert("extreme".into(), h);
        let text = render(&agg);
        check(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(
            text.contains("spmv_extreme_bucket{le=\"18446744073709551615\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn metric_name_sanitizes() {
        assert_eq!(
            metric_name("engine.cache.hit_rate_pct"),
            "spmv_engine_cache_hit_rate_pct"
        );
        assert_eq!(metric_name("a-b c"), "spmv_a_b_c");
    }
}
