//! Per-request trace capture for the serve path.
//!
//! The global sink ([`crate::span`]) answers "where did the *process*
//! spend its time"; a long-lived daemon also needs "where did *this
//! request* spend its time". A [`RequestCtx`] carries a request id and
//! admission instant from serve's admission point through the engine
//! (including the scoped worker pool — the ctx is `Sync`, so per-domain
//! compute closures record into it concurrently) and accumulates a small
//! phase tree: queue-wait, cache-lookup, compute, per-domain work,
//! stream-out.
//!
//! Two properties mirror the global sink's contract:
//!
//! * **Disabled is near-free.** [`RequestCtx::disabled`] carries no
//!   allocation; every recording call checks one `Option`, never reads
//!   the clock, and feeds nothing — not even a requested global
//!   histogram, so batch entry points (which always pass a disabled ctx)
//!   stay free of request-phase telemetry.
//! * **Side channel only.** Traces never touch report payloads; the wire
//!   bytes of a traced request are identical to an untraced one.
//!
//! Phases merge by *name path* exactly like span trees: same path ⇒ one
//! node summing `count` and `wall_ns`, so per-domain fan-out shows up as
//! one `domain` node with `count == domains`. Each phase may additionally
//! feed a named global histogram ([`crate::observe`]) so the *fleet-wide*
//! latency distribution of e.g. queue-wait builds up alongside the
//! per-request numbers.

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One node of a finished request's phase tree (children keyed by phase
/// name; `BTreeMap` keeps serialization order stable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseNode {
    /// Times the phase was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub wall_ns: u64,
    /// Sub-phases by name.
    pub children: BTreeMap<&'static str, PhaseNode>,
}

impl PhaseNode {
    fn at_path<'a>(&'a mut self, path: &[&'static str]) -> &'a mut PhaseNode {
        let mut node = self;
        for name in path {
            node = node.children.entry(name).or_default();
        }
        node
    }

    /// Looks up a (possibly nested) phase by path.
    pub fn get(&self, path: &[&'static str]) -> Option<&PhaseNode> {
        let mut node = self;
        for name in path {
            node = node.children.get(name)?;
        }
        Some(node)
    }
}

struct TraceInner {
    request_id: String,
    admitted_at: Instant,
    root: Mutex<PhaseNode>,
}

/// Identity and phase accumulator for one in-flight request.
///
/// Cheap to pass by reference through the engine; a
/// [`disabled`](RequestCtx::disabled) ctx records nothing.
pub struct RequestCtx {
    inner: Option<Arc<TraceInner>>,
}

impl RequestCtx {
    /// A live ctx: `admitted_at` is *now*, phases accumulate.
    pub fn new(request_id: impl Into<String>) -> RequestCtx {
        RequestCtx {
            inner: Some(Arc::new(TraceInner {
                request_id: request_id.into(),
                admitted_at: Instant::now(),
                root: Mutex::new(PhaseNode::default()),
            })),
        }
    }

    /// A no-op ctx: every call is an `Option` check, no clock reads, no
    /// allocation. The engine's non-serve entry points use this.
    pub fn disabled() -> RequestCtx {
        RequestCtx { inner: None }
    }

    /// Whether this ctx records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The request id a live ctx was admitted under.
    pub fn request_id(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| i.request_id.as_str())
    }

    /// The admission instant of a live ctx (phase offsets and the final
    /// `total_ns` are measured from here).
    pub fn admitted_at(&self) -> Option<Instant> {
        self.inner.as_deref().map(|i| i.admitted_at)
    }

    /// Opens a phase at `path`; the guard closes it on drop. `hist`
    /// optionally names a global [`crate::observe`] histogram fed the
    /// same duration, so fleet-wide latency distributions accumulate even
    /// for requests nobody TRACEs (every served request carries a live
    /// ctx whether or not anyone retrieves its trace). A disabled ctx
    /// feeds neither the tree nor the histogram — batch entry points stay
    /// free of request-phase telemetry — and costs one branch.
    pub fn phase(
        &self,
        path: &'static [&'static str],
        hist: Option<&'static str>,
    ) -> PhaseGuard<'_> {
        let observe = hist.filter(|_| self.inner.is_some() && crate::enabled());
        let start = (self.inner.is_some() || observe.is_some()).then(Instant::now);
        PhaseGuard {
            inner: self.inner.as_deref(),
            path,
            hist: observe,
            start,
        }
    }

    /// Records a phase whose start predates this call (e.g. queue-wait,
    /// whose clock started at admission on another thread). Duration is
    /// `start..now`.
    pub fn record_since(
        &self,
        path: &'static [&'static str],
        start: Instant,
        hist: Option<&'static str>,
    ) {
        let observe = hist.filter(|_| self.inner.is_some() && crate::enabled());
        if self.inner.is_none() {
            return;
        }
        let nanos = start.elapsed().as_nanos() as u64;
        if let Some(inner) = self.inner.as_deref() {
            inner.add(path, nanos);
        }
        if let Some(h) = observe {
            crate::observe(h, nanos);
        }
    }

    /// Freezes the accumulated tree into a [`Trace`] (`None` for a
    /// disabled ctx). The ctx stays usable; `total_ns` is admission → now.
    pub fn finish(&self) -> Option<Trace> {
        let inner = self.inner.as_deref()?;
        Some(Trace {
            request_id: inner.request_id.clone(),
            total_ns: inner.admitted_at.elapsed().as_nanos() as u64,
            root: inner.root.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        })
    }
}

impl TraceInner {
    fn add(&self, path: &[&'static str], nanos: u64) {
        let mut root = self.root.lock().unwrap_or_else(|e| e.into_inner());
        let node = root.at_path(path);
        node.count += 1;
        node.wall_ns += nanos;
    }
}

/// Closes its phase on drop; see [`RequestCtx::phase`].
#[must_use = "dropping the guard immediately records an empty phase"]
pub struct PhaseGuard<'a> {
    inner: Option<&'a TraceInner>,
    path: &'static [&'static str],
    hist: Option<&'static str>,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos() as u64;
        if let Some(inner) = self.inner {
            inner.add(self.path, nanos);
        }
        if let Some(h) = self.hist {
            crate::observe(h, nanos);
        }
    }
}

/// A finished request's phase tree, ready to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The id the request was admitted under.
    pub request_id: String,
    /// Admission → finish wall time in nanoseconds.
    pub total_ns: u64,
    /// Top-level phases (the root node's own count/wall_ns are unused).
    pub root: PhaseNode,
}

impl Trace {
    /// Single-line JSON: `{"request": ..., "total_ns": ..., "phases":
    /// [{"name": ..., "count": ..., "wall_ns": ..., "children": [...]},
    /// ...]}` — the form a `TRACE` response embeds.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"request\": \"{}\", \"total_ns\": {}, \"phases\": ",
            escape(&self.request_id),
            self.total_ns
        );
        write_children(&mut out, &self.root.children);
        out.push('}');
        out
    }
}

fn write_children(out: &mut String, children: &BTreeMap<&'static str, PhaseNode>) {
    out.push('[');
    let mut first = true;
    for (name, node) in children {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"count\": {}, \"wall_ns\": {}, \"children\": ",
            escape(name),
            node.count,
            node.wall_ns
        );
        write_children(out, &node.children);
        out.push('}');
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_records_nothing_and_finishes_none() {
        let ctx = RequestCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.request_id(), None);
        {
            let _p = ctx.phase(&["compute"], None);
        }
        ctx.record_since(&["queue-wait"], Instant::now(), None);
        assert!(ctx.finish().is_none());
    }

    #[test]
    fn phases_merge_by_path_across_threads() {
        let ctx = RequestCtx::new("r1");
        {
            let _p = ctx.phase(&["cache-lookup"], None);
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _p = ctx.phase(&["compute", "domain"], None);
                });
            }
        });
        ctx.record_since(&["queue-wait"], Instant::now(), None);
        let trace = ctx.finish().expect("live ctx");
        assert_eq!(trace.request_id, "r1");
        assert_eq!(trace.root.get(&["cache-lookup"]).unwrap().count, 1);
        let domain = trace.root.get(&["compute", "domain"]).unwrap();
        assert_eq!(domain.count, 4, "same path merges into one node");
        assert!(trace.root.get(&["queue-wait"]).is_some());
        assert!(trace.root.get(&["missing"]).is_none());
    }

    #[test]
    fn trace_json_is_one_valid_line() {
        let ctx = RequestCtx::new("req \"quoted\"");
        {
            let _outer = ctx.phase(&["compute"], None);
            let _inner = ctx.phase(&["compute", "domain"], None);
        }
        let json = ctx.finish().unwrap().to_json();
        assert!(!json.contains('\n'));
        crate::json::validate(&json).unwrap_or_else(|e| panic!("invalid: {e}\n{json}"));
        assert!(
            json.contains("\"request\": \"req \\\"quoted\\\"\""),
            "{json}"
        );
        assert!(json.contains("\"name\": \"compute\""), "{json}");
        assert!(json.contains("\"name\": \"domain\""), "{json}");
    }

    #[test]
    fn durations_accumulate_and_total_covers_phases() {
        let ctx = RequestCtx::new("r2");
        {
            let _p = ctx.phase(&["compute"], None);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let trace = ctx.finish().unwrap();
        let compute = trace.root.get(&["compute"]).unwrap();
        assert!(compute.wall_ns > 0);
        assert!(trace.total_ns >= compute.wall_ns);
    }
}
