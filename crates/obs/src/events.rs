//! Flight recorder: a bounded ring of recent structured events.
//!
//! Counters say *how many* admissions, rejections, deadline hits and
//! evictions happened; the flight recorder says *which ones happened
//! last*, in order, with details — the thing a post-mortem of an
//! overload or cancellation incident actually needs. The serve daemon
//! dumps the ring to stderr (and an optional file) on `SIGQUIT` and when
//! an executor thread panics.
//!
//! Design constraints, mirroring the rest of the crate:
//!
//! * **Disabled sites cost one relaxed atomic load.** [`record`] takes
//!   the detail as a closure so a disabled recorder never formats a
//!   string.
//! * **Lock-light.** One short [`Mutex`] guards the ring; events are rare
//!   (admissions and incidents, not per-reference work) so contention is
//!   negligible, and a panicking recorder never poisons readers
//!   (`into_inner` on poison).
//! * **Bounded.** The ring holds the newest `capacity` events; sequence
//!   numbers are global and never reused, so a dump shows how much
//!   history was dropped.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default ring capacity used by [`enable`]'s callers that have no
/// opinion (512 events ≈ minutes of serve history at realistic rates).
pub const DEFAULT_CAPACITY: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Ring {
    started: Instant,
    next_seq: u64,
    capacity: usize,
    buf: VecDeque<Event>,
}

fn ring() -> MutexGuard<'static, Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            started: Instant::now(),
            next_seq: 0,
            capacity: DEFAULT_CAPACITY,
            buf: VecDeque::new(),
        })
    })
    .lock()
    .unwrap_or_else(|e| e.into_inner())
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (never reused; gaps mean dropped history —
    /// the ring only keeps the newest `capacity`).
    pub seq: u64,
    /// Milliseconds since the recorder first existed.
    pub at_ms: u64,
    /// Static event kind (e.g. `"overloaded"`, `"deadline"`, `"panic"`).
    pub kind: &'static str,
    /// Free-form detail (request id, queue depth, panic message, ...).
    pub detail: String,
}

impl Event {
    /// The event as one line of JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"at_ms\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            self.seq,
            self.at_ms,
            crate::json::escape(self.kind),
            crate::json::escape(&self.detail)
        )
    }
}

/// Whether events are being recorded (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on with the given ring capacity (min 1). Existing
/// events beyond the new capacity are dropped oldest-first.
pub fn enable(capacity: usize) {
    {
        let mut r = ring();
        r.capacity = capacity.max(1);
        while r.buf.len() > r.capacity {
            r.buf.pop_front();
        }
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off; [`record`] becomes one relaxed load again.
/// Already-recorded events stay dumpable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Drops all recorded events (capacity and sequence counter survive —
/// sequence numbers are never reused).
pub fn clear() {
    ring().buf.clear();
}

/// Records one event. `detail` is only invoked when the recorder is
/// enabled, so a disabled site never formats anything.
#[inline]
pub fn record(kind: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let detail = detail();
    let mut r = ring();
    let at_ms = r.started.elapsed().as_millis() as u64;
    let seq = r.next_seq;
    r.next_seq += 1;
    if r.buf.len() == r.capacity {
        r.buf.pop_front();
    }
    r.buf.push_back(Event {
        seq,
        at_ms,
        kind,
        detail,
    });
}

/// The recorded events, oldest first.
pub fn recent() -> Vec<Event> {
    ring().buf.iter().cloned().collect()
}

/// Renders the ring as a dump: a `# flight-recorder` header, one JSON
/// line per event (oldest first), and a `# flight-recorder end` footer.
/// The markers make the dump greppable inside a busy stderr stream.
pub fn render_dump() -> String {
    let events = recent();
    let mut out = String::new();
    let _ = writeln!(out, "# flight-recorder dump: {} event(s)", events.len());
    for e in &events {
        let _ = writeln!(out, "{}", e.to_json());
    }
    out.push_str("# flight-recorder end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder state is process-global; tests must not interleave.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_never_builds_details() {
        let _guard = lock();
        disable();
        clear();
        let mut called = false;
        record("admit", || {
            called = true;
            String::new()
        });
        assert!(!called, "detail closure must not run while disabled");
        assert!(recent().is_empty());
    }

    #[test]
    fn ring_keeps_newest_with_global_sequence() {
        let _guard = lock();
        clear();
        enable(4);
        let first_seq = {
            record("probe", String::new);
            let seq = recent().last().unwrap().seq;
            clear();
            seq + 1
        };
        for i in 0..10 {
            record("admit", || format!("r{i}"));
        }
        disable();
        let events = recent();
        assert_eq!(events.len(), 4, "capacity bounds the ring");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            vec![first_seq + 6, first_seq + 7, first_seq + 8, first_seq + 9]
        );
        assert_eq!(events[0].detail, "r6");
        assert_eq!(events[3].detail, "r9");
    }

    #[test]
    fn dump_is_marked_and_json_lines_parse() {
        let _guard = lock();
        clear();
        enable(8);
        record("overloaded", || "id=c9 queue=0".to_string());
        record("deadline", || "id=c10 \"quoted\"".to_string());
        disable();
        let dump = render_dump();
        let mut lines = dump.lines();
        assert_eq!(lines.next(), Some("# flight-recorder dump: 2 event(s)"));
        let mut body = 0;
        for line in lines {
            if line == "# flight-recorder end" {
                break;
            }
            body += 1;
            crate::json::validate(line).unwrap_or_else(|e| panic!("bad dump line {line}: {e}"));
        }
        assert_eq!(body, 2);
        assert!(dump.contains("\"kind\": \"overloaded\""));
        assert!(
            dump.contains("\\\"quoted\\\""),
            "details are escaped: {dump}"
        );
        assert!(dump.ends_with("# flight-recorder end\n"));
    }

    #[test]
    fn shrinking_capacity_trims_oldest() {
        let _guard = lock();
        clear();
        enable(8);
        for i in 0..6 {
            record("e", || format!("{i}"));
        }
        enable(2);
        disable();
        let events = recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].detail, "5");
    }
}
