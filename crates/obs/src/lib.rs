//! Offline telemetry for the prediction pipeline.
//!
//! Every stage of the locality model — trace streaming, stack processing,
//! profile construction, cache lookups — can report what it did through
//! this crate: hierarchical [`span`]s with monotonic wall times, typed
//! [`add`] counters, [`gauge_max`] gauges, log2-bucketed [`observe`]
//! histograms, and peak-RSS [`rss_checkpoint`]s. Three properties the
//! pipeline depends on:
//!
//! * **No-op when disabled.** The global sink starts disabled; every
//!   recording call first reads one relaxed atomic and returns. Hot loops
//!   stay uninstrumented — stages count into plain locals (or reuse state
//!   they already track) and report once per phase, so a disabled build
//!   pays a handful of atomic loads per *domain*, not per reference.
//! * **Thread-local collection, merge at join.** Enabled recording goes to
//!   a per-thread collector; when a worker thread exits (the engine's
//!   scoped pools join before returning) its collector drains into the
//!   global aggregate under one short lock (see [`flush_thread`]). Merging is commutative — sums
//!   for counters and histogram buckets, max for gauges, recursive
//!   name-keyed sums for span trees — so any schedule yields the same
//!   aggregate (wall times aside).
//! * **Side channel only.** Telemetry never touches report payloads; the
//!   batch/validate JSON-lines outputs are byte-identical with telemetry
//!   on or off. The aggregate leaves the process only as the separate
//!   metrics document ([`json::MetricsDoc`]) written by `--metrics`.
//!
//! Spans aggregate by *name path*: a span opened while another is open on
//! the same thread becomes its child, and same-named spans at the same
//! path merge (count + total wall time). Threads each root their own
//! forest; [`snapshot`] returns the merged forest plus all counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod events;
pub mod hist;
pub mod json;
pub mod memstats;
pub mod prom;
pub mod series;
pub mod trace;

pub use aggregate::{Aggregate, Checkpoint, SpanStats};
pub use hist::Hist;
pub use json::MetricsDoc;
pub use trace::RequestCtx;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Aggregate> {
    static GLOBAL: OnceLock<Mutex<Aggregate>> = OnceLock::new();
    GLOBAL.get_or_init(Mutex::default)
}

/// Whether telemetry is being recorded. One relaxed load; instrumentation
/// may use this to skip building report-only values.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sink on. Call [`reset`] first for a clean aggregate.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global sink off; recording calls become no-ops again.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears the global aggregate and the calling thread's collector.
///
/// Collectors of *other* live threads are not reachable and keep their
/// data; callers (tests, the CLI) reset before spawning workers.
pub fn reset() {
    *global().lock().expect("obs aggregate poisoned") = Aggregate::default();
    let _ = COLLECTOR.try_with(|c| {
        let mut c = c.borrow_mut();
        c.drain(); // discard
    });
}

/// Adds `delta` to the named counter.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        *c.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Raises the named gauge to at least `value` (gauges merge by max).
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        let mut c = c.borrow_mut();
        let g = c.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    });
}

/// Records `value` into the named log2-bucketed histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let _ = COLLECTOR.try_with(|c| {
        c.borrow_mut().hists.entry(name).or_default().record(value);
    });
}

/// Opens a span. The guard closes it on drop, accumulating one count and
/// the elapsed wall time under the span's name *path* (nested spans become
/// children of the innermost open span on this thread).
///
/// Guards must drop in LIFO order (the natural scoped usage). When
/// telemetry is disabled this neither reads the clock nor touches the
/// thread-local state.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    let opened = COLLECTOR.try_with(|c| c.borrow_mut().open(name)).is_ok();
    SpanGuard {
        start: opened.then(Instant::now),
    }
}

/// Opens a span as a *thread root* — a child of the root sentinel rather
/// than of the innermost open span. Code that sometimes runs on a fresh
/// worker thread (empty span stack) and sometimes inline on the calling
/// thread (stack mid-pipeline) uses this so the aggregated span tree has
/// the same shape either way; the worker pool's inline path is the case
/// in point. Closing still follows guard-drop LIFO order.
#[inline]
pub fn span_root(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    let opened = COLLECTOR
        .try_with(|c| c.borrow_mut().open_root(name))
        .is_ok();
    SpanGuard {
        start: opened.then(Instant::now),
    }
}

/// Appends a peak-RSS checkpoint (`VmHWM`, [`memstats::vm_hwm_kb`]) under
/// `label` to the global aggregate. `None` (no `/proc`, non-Linux) is
/// recorded as an explicit `null`. Checkpoints keep append order, so call
/// from one thread (the CLI records `start`/`end` around each command).
pub fn rss_checkpoint(label: &str) {
    rss_checkpoint_at(label, std::path::Path::new(memstats::PROC_SELF_STATUS));
}

/// [`rss_checkpoint`] reading an explicit status file — the testable
/// spelling of the portability contract: an unreadable path (non-Linux,
/// no `/proc`) still records the checkpoint, with an explicit `null`
/// `vm_hwm_kb`, never silently skipping it.
pub fn rss_checkpoint_at(label: &str, status_path: &std::path::Path) {
    if !enabled() {
        return;
    }
    global()
        .lock()
        .expect("obs aggregate poisoned")
        .checkpoints
        .push(Checkpoint {
            label: label.to_string(),
            vm_hwm_kb: memstats::vm_hwm_kb_at(status_path),
        });
}

/// Drains the calling thread's collector into the global aggregate.
///
/// Pool workers call this at the end of their work loop so the drain is
/// ordered before the pool's join returns. (The thread-local destructor
/// also drains as a safety net, but `std::thread::scope` can observe the
/// closure's return *before* TLS destructors run, so the explicit flush
/// is what makes "drained at join" deterministic.) [`snapshot`] calls it
/// for the snapshotting thread.
pub fn flush_thread() {
    let _ = COLLECTOR.try_with(|c| {
        let agg = c.borrow_mut().drain();
        global().lock().expect("obs aggregate poisoned").merge(&agg);
    });
}

/// Flushes the calling thread and returns a copy of the global aggregate.
pub fn snapshot() -> Aggregate {
    flush_thread();
    global().lock().expect("obs aggregate poisoned").clone()
}

/// Closes its span on drop. See [`span`].
#[must_use = "dropping the guard immediately records an empty span"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos() as u64;
            let _ = COLLECTOR.try_with(|c| c.borrow_mut().close(nanos));
        }
    }
}

/// One span-tree node in a collector's arena (index 0 is the root
/// sentinel; its children are the thread's top-level spans).
struct Node {
    name: &'static str,
    count: u64,
    nanos: u64,
    children: Vec<usize>,
}

/// Per-thread metric storage: cheap to update (no locks), drained into the
/// global aggregate on thread exit or [`flush_thread`].
struct Collector {
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
    nodes: Vec<Node>,
    /// Open-span chain; `stack[0]` is always the root sentinel.
    stack: Vec<usize>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            counters: HashMap::new(),
            gauges: HashMap::new(),
            hists: HashMap::new(),
            nodes: vec![Node {
                name: "",
                count: 0,
                nanos: 0,
                children: Vec::new(),
            }],
            stack: vec![0],
        }
    }

    fn open(&mut self, name: &'static str) {
        let parent = *self.stack.last().expect("root sentinel always present");
        self.open_under(parent, name);
    }

    fn open_root(&mut self, name: &'static str) {
        self.open_under(0, name);
    }

    fn open_under(&mut self, parent: usize, name: &'static str) {
        let existing = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = existing.unwrap_or_else(|| {
            self.nodes.push(Node {
                name,
                count: 0,
                nanos: 0,
                children: Vec::new(),
            });
            let idx = self.nodes.len() - 1;
            self.nodes[parent].children.push(idx);
            idx
        });
        self.stack.push(idx);
    }

    fn close(&mut self, nanos: u64) {
        // Defensive: never pop the root sentinel (an unbalanced guard
        // after a reset mid-span would otherwise corrupt the stack).
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("stack non-empty");
            self.nodes[idx].count += 1;
            self.nodes[idx].nanos += nanos;
        }
    }

    /// Moves all closed data out as an [`Aggregate`] and zeroes the span
    /// counters in place (the arena survives so open-span guards stay
    /// valid).
    fn drain(&mut self) -> Aggregate {
        let mut agg = Aggregate::default();
        for (k, v) in self.counters.drain() {
            agg.counters.insert(k.to_string(), v);
        }
        for (k, v) in self.gauges.drain() {
            agg.gauges.insert(k.to_string(), v);
        }
        for (k, v) in self.hists.drain() {
            agg.histograms.insert(k.to_string(), v);
        }
        for &c in &self.nodes[0].children {
            if let Some((name, stats)) = convert(&self.nodes, c) {
                agg.roots.insert(name, stats);
            }
        }
        for node in &mut self.nodes {
            node.count = 0;
            node.nanos = 0;
        }
        agg
    }
}

/// Converts an arena subtree into a [`SpanStats`] tree, pruning subtrees
/// that recorded nothing (left behind by a previous drain).
fn convert(nodes: &[Node], idx: usize) -> Option<(String, SpanStats)> {
    let n = &nodes[idx];
    let children: std::collections::BTreeMap<String, SpanStats> = n
        .children
        .iter()
        .filter_map(|&c| convert(nodes, c))
        .collect();
    if n.count == 0 && children.is_empty() {
        return None;
    }
    Some((
        n.name.to_string(),
        SpanStats {
            count: n.count,
            wall_ns: n.nanos,
            children,
        },
    ))
}

impl Drop for Collector {
    fn drop(&mut self) {
        let agg = self.drain();
        if let Ok(mut global) = global().lock() {
            global.merge(&agg);
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _guard = lock();
        disable();
        reset();
        add("c", 3);
        gauge_max("g", 9);
        observe("h", 100);
        {
            let _s = span("s");
        }
        rss_checkpoint("cp");
        let agg = snapshot();
        assert!(agg.counters.is_empty());
        assert!(agg.gauges.is_empty());
        assert!(agg.histograms.is_empty());
        assert!(agg.roots.is_empty());
        assert!(agg.checkpoints.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _guard = lock();
        reset();
        enable();
        add("refs", 5);
        add("refs", 7);
        gauge_max("peak", 3);
        gauge_max("peak", 9);
        gauge_max("peak", 4);
        observe("len", 1);
        observe("len", 1000);
        let agg = snapshot();
        disable();
        assert_eq!(agg.counters["refs"], 12);
        assert_eq!(agg.gauges["peak"], 9);
        let h = &agg.histograms["len"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1001);
    }

    #[test]
    fn spans_nest_by_name_path_and_merge_counts() {
        let _guard = lock();
        reset();
        enable();
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _other = span("other");
        }
        let agg = snapshot();
        disable();
        let outer = &agg.roots["outer"];
        assert_eq!(outer.count, 3);
        assert_eq!(outer.children["inner"].count, 3);
        assert_eq!(agg.roots["other"].count, 1);
        assert!(!agg.roots.contains_key("inner"), "inner must not be a root");
    }

    #[test]
    fn worker_thread_collectors_drain_at_join() {
        let _guard = lock();
        reset();
        enable();
        // No flush_thread in the workers: joining the handle (pthread_join)
        // waits for full thread termination, so the thread-local destructor
        // has merged by the time join returns. (Pools that use
        // `thread::scope` — which can return before TLS destructors run —
        // flush explicitly at the end of the worker closure instead.)
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker");
                    add("jobs", 2);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                // Surface the worker's own message, not the opaque payload.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                panic!("worker panicked: {msg}");
            }
        }
        let agg = snapshot();
        disable();
        assert_eq!(agg.counters["jobs"], 8);
        assert_eq!(agg.roots["worker"].count, 4);
    }

    #[test]
    fn explicit_flush_drains_scoped_workers() {
        let _guard = lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    add("scoped.jobs", 1);
                    flush_thread();
                });
            }
        });
        let agg = snapshot();
        disable();
        assert_eq!(agg.counters["scoped.jobs"], 4);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let _guard = lock();
        // Build three per-thread aggregates and merge them in every order:
        // the result must be identical (wall times included — they sum).
        let parts: Vec<Aggregate> = (0..3u64)
            .map(|i| {
                reset();
                enable();
                add("n", i + 1);
                observe("h", 10 * (i + 1));
                gauge_max("g", 100 - i);
                {
                    let _a = span("a");
                    let _b = span("b");
                }
                let agg = snapshot();
                disable();
                agg
            })
            .collect();
        let merge_in = |order: &[usize]| {
            let mut acc = Aggregate::default();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let reference = merge_in(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(merge_in(&order), reference, "order {order:?}");
        }
        assert_eq!(reference.counters["n"], 6);
        assert_eq!(reference.gauges["g"], 100);
        assert_eq!(reference.roots["a"].children["b"].count, 3);
    }

    #[test]
    fn drain_prunes_already_reported_spans() {
        let _guard = lock();
        reset();
        enable();
        {
            let _s = span("once");
        }
        flush_thread();
        {
            let _s = span("twice");
        }
        let agg = snapshot();
        disable();
        // "once" was drained by the explicit flush; the second drain must
        // not re-report it with a zero count.
        assert_eq!(agg.roots["once"].count, 1);
        assert_eq!(agg.roots["twice"].count, 1);
    }

    #[test]
    fn rss_checkpoint_with_missing_proc_records_explicit_null() {
        let _guard = lock();
        reset();
        enable();
        rss_checkpoint_at("no-proc", std::path::Path::new("/nonexistent/proc/status"));
        let agg = snapshot();
        disable();
        // The checkpoint is present (not silently skipped) and carries an
        // explicit None, which serializes as null.
        assert_eq!(agg.checkpoints.len(), 1);
        assert_eq!(agg.checkpoints[0].label, "no-proc");
        assert_eq!(agg.checkpoints[0].vm_hwm_kb, None);
        let doc = MetricsDoc {
            command: "test",
            aggregate: &agg,
        }
        .to_json();
        assert!(
            doc.contains("{\"label\": \"no-proc\", \"vm_hwm_kb\": null}"),
            "{doc}"
        );
    }

    #[test]
    fn rss_checkpoints_keep_order_and_allow_null() {
        let _guard = lock();
        reset();
        enable();
        rss_checkpoint("start");
        rss_checkpoint("end");
        let agg = snapshot();
        disable();
        let labels: Vec<&str> = agg.checkpoints.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["start", "end"]);
        // On Linux both carry a value; elsewhere both are None. Either way
        // the entries exist.
        assert_eq!(agg.checkpoints.len(), 2);
    }
}
