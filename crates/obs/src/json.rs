//! Metrics-document serialization (hand-rolled JSON, no serde) and a
//! minimal JSON well-formedness checker for tests and smoke scripts.

use crate::aggregate::{Aggregate, SpanStats};
use crate::hist::Hist;
use std::fmt::Write as _;

/// The structured metrics document written by `--metrics <path>`.
///
/// Schema (`"spmv-obs/1"`):
///
/// ```json
/// {
///   "schema": "spmv-obs/1",
///   "command": "batch",
///   "spans": [
///     {"name": "batch.run", "count": 1, "wall_ns": 123, "children": [...]}
///   ],
///   "counters": {"engine.cache.computations": 4, ...},
///   "gauges": {"engine.pool.workers": 4, ...},
///   "histograms": {
///     "memtrace.stream.refs": {"count": 8, "sum": 4096, "mean": 512.0,
///                               "buckets": [{"lo": 256, "count": 8}]}
///   },
///   "rss_checkpoints": [{"label": "start", "vm_hwm_kb": 8192}]
/// }
/// ```
///
/// Histogram buckets are sparse: only non-empty buckets appear, each with
/// its inclusive lower bound; `p50`/`p95`/`p99` are
/// [`Hist::quantile`]-resolved bucket floors. `vm_hwm_kb` is `null`
/// where `/proc` is unavailable.
pub struct MetricsDoc<'a> {
    /// The CLI subcommand the metrics were collected under.
    pub command: &'a str,
    /// The merged telemetry aggregate.
    pub aggregate: &'a Aggregate,
}

impl MetricsDoc<'_> {
    /// Renders the document as pretty-ish JSON (one span per line, stable
    /// key order from the aggregate's BTreeMaps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"spmv-obs/1\",");
        let _ = writeln!(out, "  \"command\": \"{}\",", escape(self.command));
        out.push_str("  \"spans\": [");
        write_span_list(&mut out, &self.aggregate.roots, 2);
        out.push_str("],\n");
        out.push_str("  \"counters\": {");
        write_u64_map(&mut out, &self.aggregate.counters);
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        write_u64_map(&mut out, &self.aggregate.gauges);
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, hist) in &self.aggregate.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": ", escape(name));
            write_hist(&mut out, hist);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"rss_checkpoints\": [");
        let mut first = true;
        for cp in &self.aggregate.checkpoints {
            if !first {
                out.push_str(", ");
            }
            first = false;
            match cp.vm_hwm_kb {
                Some(kb) => {
                    let _ = write!(
                        out,
                        "{{\"label\": \"{}\", \"vm_hwm_kb\": {kb}}}",
                        escape(&cp.label)
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\"label\": \"{}\", \"vm_hwm_kb\": null}}",
                        escape(&cp.label)
                    );
                }
            }
        }
        out.push_str("]\n");
        out.push_str("}\n");
        out
    }
}

impl MetricsDoc<'_> {
    /// The document as a single line of JSON — the form line-delimited
    /// protocols need (the serve daemon's `STATUS` response embeds the
    /// telemetry document in one response line).
    ///
    /// Implemented by collapsing the pretty rendering: every string in
    /// the document is escaped (`escape` turns raw newlines into
    /// `\n`), so literal newlines and the indentation that follows them
    /// only ever come from [`Self::to_json`]'s own formatting and can be
    /// stripped without touching values.
    pub fn to_json_line(&self) -> String {
        let pretty = self.to_json();
        let mut out = String::with_capacity(pretty.len());
        for line in pretty.lines() {
            out.push_str(line.trim_start());
        }
        out
    }
}

fn write_span_list(
    out: &mut String,
    spans: &std::collections::BTreeMap<String, SpanStats>,
    indent: usize,
) {
    let mut first = true;
    for (name, span) in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        for _ in 0..indent + 1 {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"count\": {}, \"wall_ns\": {}, \"children\": [",
            escape(name),
            span.count,
            span.wall_ns
        );
        if span.children.is_empty() {
            out.push_str("]}");
        } else {
            write_span_list(out, &span.children, indent + 1);
            out.push('\n');
            for _ in 0..indent + 1 {
                out.push_str("  ");
            }
            out.push_str("]}");
        }
    }
    if !first {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_u64_map(out: &mut String, map: &std::collections::BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {v}", escape(k));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn write_hist(out: &mut String, h: &Hist) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        h.count,
        h.sum,
        fmt_f64(h.mean()),
        h.p50(),
        h.p95(),
        h.p99()
    );
    let mut first = true;
    for (b, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{{\"lo\": {}, \"count\": {n}}}", Hist::bucket_lo(b));
    }
    out.push_str("]}");
}

/// Formats a float so it round-trips as JSON (always with a decimal point
/// or exponent, never `NaN`/`inf` — callers only pass finite means).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks that `text` is one well-formed JSON value (trailing whitespace
/// allowed). Returns a byte offset + message on the first error.
///
/// This is a structural validator only — no value model, no number
/// range checks — enough for tests to assert the metrics document and
/// report lines parse.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape + escaped byte; \uXXXX hex digits are plain bytes
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        if b[*pos].is_ascii_digit() {
            digits += 1;
        }
        *pos += 1;
    }
    if digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    Ok(())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Checkpoint;

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate("{}").is_ok());
        assert!(validate("  [1, 2.5, -3e4, \"a\\\"b\", true, null] ").is_ok());
        assert!(validate("{\"a\": {\"b\": [1]}}").is_ok());
        assert!(validate("{,}").is_err());
        assert!(validate("[1 2]").is_err());
        assert!(validate("{\"a\": 1} x").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("nul").is_err());
    }

    #[test]
    fn metrics_doc_renders_valid_json_with_all_sections() {
        let mut agg = Aggregate::default();
        agg.counters.insert("engine.cache.hits".into(), 3);
        agg.gauges.insert("engine.pool.workers".into(), 4);
        let mut h = Hist::default();
        h.record(0);
        h.record(512);
        agg.histograms.insert("memtrace.stream.refs".into(), h);
        let child = SpanStats {
            count: 2,
            wall_ns: 50,
            ..SpanStats::default()
        };
        let mut root = SpanStats {
            count: 1,
            wall_ns: 100,
            ..SpanStats::default()
        };
        root.children.insert("cache.lookup".into(), child);
        agg.roots.insert("batch.run".into(), root);
        agg.checkpoints.push(Checkpoint {
            label: "start".into(),
            vm_hwm_kb: None,
        });
        agg.checkpoints.push(Checkpoint {
            label: "end".into(),
            vm_hwm_kb: Some(4096),
        });

        let doc = MetricsDoc {
            command: "batch",
            aggregate: &agg,
        }
        .to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        for needle in [
            "\"schema\": \"spmv-obs/1\"",
            "\"command\": \"batch\"",
            "\"name\": \"batch.run\"",
            "\"name\": \"cache.lookup\"",
            "\"engine.cache.hits\": 3",
            "\"engine.pool.workers\": 4",
            "\"memtrace.stream.refs\"",
            "{\"lo\": 512, \"count\": 1}",
            "\"vm_hwm_kb\": null",
            "\"vm_hwm_kb\": 4096",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn single_line_rendering_is_valid_and_newline_free() {
        let mut agg = Aggregate::default();
        agg.counters.insert("serve.requests".into(), 2);
        agg.checkpoints.push(Checkpoint {
            label: "tricky\nlabel \"x\"".into(),
            vm_hwm_kb: Some(1),
        });
        let mut root = SpanStats {
            count: 1,
            ..SpanStats::default()
        };
        root.children
            .insert("cache.lookup".into(), SpanStats::default());
        agg.roots.insert("serve.request".into(), root);
        let doc = MetricsDoc {
            command: "serve",
            aggregate: &agg,
        };
        let line = doc.to_json_line();
        assert!(!line.contains('\n'), "must fit one protocol line: {line}");
        validate(&line).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{line}"));
        assert!(line.contains("\"serve.requests\": 2"), "{line}");
        assert!(line.contains("tricky\\nlabel \\\"x\\\""), "{line}");
        // Same content as the pretty form, whitespace aside.
        let squashed: String = doc.to_json().lines().map(str::trim_start).collect();
        assert_eq!(line, squashed);
    }

    #[test]
    fn empty_aggregate_renders_valid_json() {
        let agg = Aggregate::default();
        let doc = MetricsDoc {
            command: "analyze",
            aggregate: &agg,
        }
        .to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        assert!(doc.contains("\"spans\": []"));
        assert!(doc.contains("\"counters\": {}"));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert!(validate(&format!("\"{}\"", escape("ctrl\u{1}char"))).is_ok());
    }
}
