//! Log2-bucketed histogram for cheap distribution capture.

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `b >= 1` counts values whose
/// highest set bit is `b - 1`, i.e. values in `[2^(b-1), 2^b)`. With 65
/// buckets every `u64` has a home and recording is a `leading_zeros`
/// plus one increment. Histograms merge by element-wise addition, so the
/// merge is commutative and associative — aggregation order never shows
/// in the result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (wrapping add; practical totals fit).
    pub sum: u64,
    /// Bucket counts; see the type docs for the bucket boundaries.
    pub buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    /// Index of the bucket holding `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
    pub fn bucket_lo(b: usize) -> u64 {
        if b <= 1 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Adds another histogram into this one (commutative).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive lower bound of bucket `b`'s *value range* (0 for bucket
    /// 0, 1 for bucket 1, `2^(b-1)` beyond). Unlike
    /// [`bucket_lo`](Self::bucket_lo) — which reports 0 for bucket 1 in
    /// the serialized document — this is the smallest value that actually
    /// lands in the bucket, which is what quantiles want.
    pub fn bucket_floor(b: usize) -> u64 {
        match b {
            0 => 0,
            1 => 1,
            _ => 1u64 << (b - 1),
        }
    }

    /// The `q`-quantile of the recorded samples (`q` in `[0, 1]`,
    /// clamped), resolved to the **[`bucket_floor`](Self::bucket_floor)
    /// of the bucket holding the sample of rank `ceil(q * count)`**
    /// (1-based ranks; the rank floors at 1, so `quantile(0.0)` is the
    /// minimum sample's bucket).
    ///
    /// A log2 histogram cannot reproduce the exact sample, so the
    /// returned value is the bucket floor: for any recorded value
    /// `v >= 1` the reported quantile `r` satisfies `r <= v < 2r`, and
    /// `v == 0` reports exactly 0. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(b);
            }
        }
        Self::bucket_floor(64)
    }

    /// Median ([`quantile`](Self::quantile) at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile ([`quantile`](Self::quantile) at 0.95).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile ([`quantile`](Self::quantile) at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            // Every bucket's lower bound maps back into that bucket
            // (buckets 0 and 1 share lo=0 -> bucket 0 for the zero value).
            let lo = Hist::bucket_lo(b);
            if b >= 2 {
                assert_eq!(Hist::bucket_of(lo), b);
            }
        }
    }

    #[test]
    fn record_and_merge_commute() {
        let vals_a = [0u64, 1, 5, 1024, 77];
        let vals_b = [3u64, 3, u64::MAX, 0];
        let mut ab = Hist::default();
        let mut ba = Hist::default();
        let (mut a, mut b) = (Hist::default(), Hist::default());
        for v in vals_a {
            a.record(v);
        }
        for v in vals_b {
            b.record(v);
        }
        ab.merge(&a);
        ab.merge(&b);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 9);
        assert_eq!(ab.buckets[0], 2); // one zero from each side
        let mut direct = Hist::default();
        for v in vals_a.iter().chain(vals_b.iter()) {
            direct.record(*v);
        }
        assert_eq!(ab, direct);
    }

    #[test]
    fn quantiles_resolve_to_bucket_lower_bounds() {
        // Samples 1..=8 land in buckets 1 (just 1), 2 (2,3), 3 (4..7)
        // and 4 (just 8). Rank arithmetic is pinned against that layout.
        let mut h = Hist::default();
        for v in 1..=8u64 {
            h.record(v);
        }
        // p50: rank ceil(0.5*8)=4 -> cumulative 1,3,7 -> bucket 3, lo 4.
        assert_eq!(h.p50(), 4);
        // p95: rank ceil(7.6)=8 -> bucket 4, lo 8.
        assert_eq!(h.p95(), 8);
        assert_eq!(h.p99(), 8);
        assert_eq!(h.quantile(0.0), 1, "rank floors at 1, never 0");
        assert_eq!(h.quantile(1.0), 8);
        // bucket_floor disagrees with bucket_lo only at bucket 1, where
        // the serialized lower bound collapses to 0 but the smallest
        // recordable value is 1.
        assert_eq!(Hist::bucket_floor(0), 0);
        assert_eq!(Hist::bucket_floor(1), 1);
        for b in 2..=64 {
            assert_eq!(Hist::bucket_floor(b), Hist::bucket_lo(b));
        }
    }

    #[test]
    fn quantile_boundary_values_stay_in_their_buckets() {
        // 1023 and 1024 straddle a bucket boundary: the histogram must
        // report each as its own bucket's floor, not blur them together.
        let mut low = Hist::default();
        low.record(1023);
        assert_eq!(low.quantile(0.5), 512, "1023 lives in [512, 1024)");
        let mut high = Hist::default();
        high.record(1024);
        assert_eq!(high.quantile(0.5), 1024, "1024 opens [1024, 2048)");
        // The reported quantile r brackets the true value: r <= v < 2r.
        for v in [1u64, 2, 3, 500, 1023, 1024, u64::MAX / 2] {
            let mut h = Hist::default();
            h.record(v);
            let r = h.p99();
            assert!(r >= 1 && r <= v && v < r.saturating_mul(2), "v={v} r={r}");
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Hist::default();
        assert_eq!(empty.quantile(0.5), 0);
        let mut zeros = Hist::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.p99(), 0, "zeros stay in bucket 0 with lo 0");
        let mut top = Hist::default();
        top.record(u64::MAX);
        assert_eq!(top.p50(), Hist::bucket_lo(64));
        // Skewed tail: 99 fast samples and one slow one. p50 sees the
        // fast bucket, p99 lands exactly on the rank-99 sample (fast).
        let mut skew = Hist::default();
        for _ in 0..99 {
            skew.record(10);
        }
        skew.record(1_000_000);
        assert_eq!(skew.p50(), 8);
        assert_eq!(skew.p99(), 8, "rank 99 of 100 is still a fast sample");
        assert_eq!(
            skew.quantile(1.0),
            Hist::bucket_lo(Hist::bucket_of(1_000_000))
        );
    }

    #[test]
    fn mean_handles_empty() {
        let mut h = Hist::default();
        assert_eq!(h.mean(), 0.0);
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
    }
}
