//! Log2-bucketed histogram for cheap distribution capture.

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `b >= 1` counts values whose
/// highest set bit is `b - 1`, i.e. values in `[2^(b-1), 2^b)`. With 65
/// buckets every `u64` has a home and recording is a `leading_zeros`
/// plus one increment. Histograms merge by element-wise addition, so the
/// merge is commutative and associative — aggregation order never shows
/// in the result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (wrapping add; practical totals fit).
    pub sum: u64,
    /// Bucket counts; see the type docs for the bucket boundaries.
    pub buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    /// Index of the bucket holding `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
    pub fn bucket_lo(b: usize) -> u64 {
        if b <= 1 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Adds another histogram into this one (commutative).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            // Every bucket's lower bound maps back into that bucket
            // (buckets 0 and 1 share lo=0 -> bucket 0 for the zero value).
            let lo = Hist::bucket_lo(b);
            if b >= 2 {
                assert_eq!(Hist::bucket_of(lo), b);
            }
        }
    }

    #[test]
    fn record_and_merge_commute() {
        let vals_a = [0u64, 1, 5, 1024, 77];
        let vals_b = [3u64, 3, u64::MAX, 0];
        let mut ab = Hist::default();
        let mut ba = Hist::default();
        let (mut a, mut b) = (Hist::default(), Hist::default());
        for v in vals_a {
            a.record(v);
        }
        for v in vals_b {
            b.record(v);
        }
        ab.merge(&a);
        ab.merge(&b);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 9);
        assert_eq!(ab.buckets[0], 2); // one zero from each side
        let mut direct = Hist::default();
        for v in vals_a.iter().chain(vals_b.iter()) {
            direct.record(*v);
        }
        assert_eq!(ab, direct);
    }

    #[test]
    fn mean_handles_empty() {
        let mut h = Hist::default();
        assert_eq!(h.mean(), 0.0);
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
    }
}
