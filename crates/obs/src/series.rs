//! Rolling time-series over monotonic counters.
//!
//! A long-lived daemon needs *rates*, not lifetime totals: "the cache
//! hit-rate is 98% since boot" hides the cold client that is missing
//! right now. A sampler thread snapshots its live counters on a fixed
//! tick into a [`SeriesRing`]; windowed rates are then derived as the
//! delta between the newest sample and the oldest sample still inside
//! the window, divided by the time between them.
//!
//! Contracts the serve daemon (and DESIGN.md §3e) rely on:
//!
//! * **Bounded.** The ring keeps the newest `capacity` samples; pushing
//!   beyond that drops the oldest. Memory is `O(capacity × keys)` and
//!   independent of uptime.
//! * **Deltas, not totals.** A rate over window `w` uses exactly two
//!   samples — the newest, and the oldest with `at_ms >= now - w` — so
//!   a counter that stopped moving decays to 0 within one window.
//! * **Honest absence.** Fewer than two samples in the window (daemon
//!   just started, window shorter than the tick) yields `None`, which
//!   serializes as `null` — never a fabricated 0.
//! * **Monotonic inputs.** Samples carry cumulative counters; deltas are
//!   `saturating_sub`, so a counter reset (which live serve counters
//!   never do) clamps to 0 rather than underflowing.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The STATUS windows: label → width in milliseconds.
pub const WINDOWS: [(&str, u64); 3] = [("10s", 10_000), ("1m", 60_000), ("5m", 300_000)];

/// One sampler tick: a timestamp plus the cumulative counter values and
/// instantaneous gauge values observed at that instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sample {
    /// Milliseconds since the observer's epoch (serve uses daemon start).
    pub at_ms: u64,
    /// Cumulative counters (monotonic).
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges (e.g. queue depth) at this tick.
    pub gauges: BTreeMap<String, u64>,
}

impl Sample {
    /// The named counter at this tick (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Bounded ring of [`Sample`]s with windowed-rate derivation.
#[derive(Clone, Debug)]
pub struct SeriesRing {
    capacity: usize,
    samples: VecDeque<Sample>,
}

impl SeriesRing {
    /// An empty ring keeping at most `capacity` samples (min 2 — a rate
    /// needs two points).
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            capacity: capacity.max(2),
            samples: VecDeque::new(),
        }
    }

    /// Capacity that covers the widest [`WINDOWS`] entry at `tick_ms`
    /// (plus one fencepost sample), clamped to `[2, 4096]` so a
    /// pathological tick cannot balloon memory.
    pub fn capacity_for_tick(tick_ms: u64) -> usize {
        let widest = WINDOWS.iter().map(|&(_, w)| w).max().unwrap_or(0);
        (widest / tick_ms.max(1) + 2).clamp(2, 4096) as usize
    }

    /// Appends a sample, dropping the oldest beyond capacity. Samples
    /// must arrive in non-decreasing `at_ms` order (one sampler thread).
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// The two samples a `window_ms` rate at `now_ms` is derived from:
    /// the oldest retained sample with `at_ms >= now_ms - window_ms`,
    /// and the newest. `None` unless both exist and time actually
    /// elapsed between them.
    pub fn window(&self, now_ms: u64, window_ms: u64) -> Option<(&Sample, &Sample)> {
        let newest = self.samples.back()?;
        let cutoff = now_ms.saturating_sub(window_ms);
        let oldest = self.samples.iter().find(|s| s.at_ms >= cutoff)?;
        (oldest.at_ms < newest.at_ms).then_some((oldest, newest))
    }

    /// Increase of the named counter across the window (saturating).
    pub fn delta(&self, now_ms: u64, window_ms: u64, counter: &str) -> Option<u64> {
        let (oldest, newest) = self.window(now_ms, window_ms)?;
        Some(
            newest
                .counter(counter)
                .saturating_sub(oldest.counter(counter)),
        )
    }

    /// The named counter's rate per second across the window.
    pub fn rate_per_sec(&self, now_ms: u64, window_ms: u64, counter: &str) -> Option<f64> {
        let (oldest, newest) = self.window(now_ms, window_ms)?;
        let dt_ms = newest.at_ms - oldest.at_ms;
        let delta = newest
            .counter(counter)
            .saturating_sub(oldest.counter(counter));
        Some(delta as f64 * 1000.0 / dt_ms as f64)
    }

    /// Maximum of the named gauge across samples inside the window. A
    /// gauge needs only one point (it is instantaneous, not a delta);
    /// `None` when no sample in the window carries the gauge.
    pub fn gauge_max(&self, now_ms: u64, window_ms: u64, gauge: &str) -> Option<u64> {
        let cutoff = now_ms.saturating_sub(window_ms);
        self.samples
            .iter()
            .filter(|s| s.at_ms >= cutoff)
            .filter_map(|s| s.gauges.get(gauge).copied())
            .max()
    }

    /// `100 × Δnum / Σ Δden` across the window — e.g. cache hit-rate as
    /// `ratio_pct(now, w, "hits", &["hits", "computations"])`. `None`
    /// when the window is unavailable or nothing moved (an idle cache
    /// has no hit-rate, rather than a fake 0% or 100%).
    pub fn ratio_pct(&self, now_ms: u64, window_ms: u64, num: &str, den: &[&str]) -> Option<f64> {
        let (oldest, newest) = self.window(now_ms, window_ms)?;
        let d = |name: &str| newest.counter(name).saturating_sub(oldest.counter(name));
        let denom: u64 = den.iter().map(|n| d(n)).sum();
        if denom == 0 {
            return None;
        }
        Some(100.0 * d(num) as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, pairs: &[(&str, u64)]) -> Sample {
        Sample {
            at_ms,
            counters: pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            gauges: BTreeMap::new(),
        }
    }

    #[test]
    fn rates_come_from_window_edges() {
        let mut ring = SeriesRing::new(16);
        for t in 0..=10u64 {
            ring.push(sample(t * 1000, &[("refs", t * 100), ("jobs", t)]));
        }
        // 10s window at t=10s spans t=0..10: 1000 refs over 10s.
        assert_eq!(ring.rate_per_sec(10_000, 10_000, "refs"), Some(100.0));
        assert_eq!(ring.delta(10_000, 10_000, "jobs"), Some(10));
        // 4s window only sees t=6..10: 400 refs over 4s.
        assert_eq!(ring.rate_per_sec(10_000, 4_000, "refs"), Some(100.0));
        assert_eq!(ring.delta(10_000, 4_000, "refs"), Some(400));
        // Unknown counters read as 0 everywhere -> rate 0, not None.
        assert_eq!(ring.rate_per_sec(10_000, 4_000, "nope"), Some(0.0));
    }

    #[test]
    fn too_few_samples_is_none_not_zero() {
        let mut ring = SeriesRing::new(8);
        assert_eq!(ring.rate_per_sec(0, 10_000, "refs"), None);
        ring.push(sample(0, &[("refs", 5)]));
        assert_eq!(ring.rate_per_sec(0, 10_000, "refs"), None, "one point");
        ring.push(sample(1000, &[("refs", 10)]));
        assert_eq!(ring.rate_per_sec(1000, 10_000, "refs"), Some(5.0));
        // A window too narrow to contain two samples is also None.
        assert_eq!(ring.rate_per_sec(1000, 1, "refs"), None);
    }

    #[test]
    fn capacity_bounds_and_drops_oldest() {
        let mut ring = SeriesRing::new(3);
        for t in 0..10u64 {
            ring.push(sample(t, &[("c", t)]));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.latest().unwrap().at_ms, 9);
        // The huge window clamps to what's retained: t=7..9.
        assert_eq!(ring.delta(9, 1_000_000, "c"), Some(2));
    }

    #[test]
    fn ratio_pct_is_windowed_and_honest_when_idle() {
        let mut ring = SeriesRing::new(16);
        // Lifetime: 50 hits / 100 lookups = 50%. Last 2 ticks: 30/30 hit.
        ring.push(sample(0, &[("hits", 0), ("comps", 0)]));
        ring.push(sample(1000, &[("hits", 20), ("comps", 50)]));
        ring.push(sample(2000, &[("hits", 35), ("comps", 50)]));
        ring.push(sample(3000, &[("hits", 50), ("comps", 50)]));
        let recent = ring
            .ratio_pct(3000, 2000, "hits", &["hits", "comps"])
            .unwrap();
        assert!(
            (recent - 100.0).abs() < 1e-9,
            "window is all hits: {recent}"
        );
        let lifetime = ring
            .ratio_pct(3000, 10_000, "hits", &["hits", "comps"])
            .unwrap();
        assert!((lifetime - 50.0).abs() < 1e-9, "{lifetime}");
        // Nothing moved in the window -> None, not 0%.
        ring.push(sample(4000, &[("hits", 50), ("comps", 50)]));
        assert_eq!(ring.ratio_pct(4000, 1000, "hits", &["hits", "comps"]), None);
    }

    #[test]
    fn gauge_max_needs_only_one_point_in_window() {
        let mut ring = SeriesRing::new(8);
        let mut s = sample(1000, &[]);
        s.gauges.insert("depth".into(), 7);
        ring.push(s);
        let mut s = sample(2000, &[]);
        s.gauges.insert("depth".into(), 3);
        ring.push(s);
        // One-point windows still answer (unlike counter rates).
        assert_eq!(ring.gauge_max(2000, 500, "depth"), Some(3));
        assert_eq!(ring.gauge_max(2000, 2000, "depth"), Some(7));
        assert_eq!(ring.gauge_max(2000, 2000, "missing"), None);
    }

    #[test]
    fn counter_reset_saturates_to_zero() {
        let mut ring = SeriesRing::new(8);
        ring.push(sample(0, &[("c", 100)]));
        ring.push(sample(1000, &[("c", 40)]));
        assert_eq!(ring.delta(1000, 10_000, "c"), Some(0));
    }

    #[test]
    fn capacity_for_tick_covers_widest_window() {
        assert_eq!(SeriesRing::capacity_for_tick(1000), 302);
        assert_eq!(SeriesRing::capacity_for_tick(0), 4096, "clamped");
        assert_eq!(SeriesRing::capacity_for_tick(u64::MAX), 2);
    }
}
