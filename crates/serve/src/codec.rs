//! The wire framing: newline-delimited frames with a hard length cap.
//!
//! Sockets deliver arbitrary byte chunks; the framer reassembles them
//! into `\n`-terminated lines without ever buffering more than the cap.
//! An over-long line is the protocol's only unrecoverable *frame* (its
//! contents are garbage by definition), but it must not poison the
//! connection: the framer discards until the next newline and reports
//! one [`Frame::Oversized`] event, after which framing is back in sync.
//! Likewise a frame that is not UTF-8 surfaces as [`Frame::BadUtf8`]
//! rather than tearing the session down.

/// One framing outcome from [`LineFramer::push`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its trailing `\n`; a final `\r` is
    /// stripped so `\r\n` clients work).
    Line(String),
    /// A line exceeded the length cap; `dropped` bytes were discarded
    /// (grows until the terminating newline arrives in later pushes).
    Oversized {
        /// Bytes thrown away so far for this frame.
        dropped: usize,
    },
    /// A complete line that was not valid UTF-8.
    BadUtf8,
}

/// Reassembles byte chunks into length-capped lines.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    /// Mid-discard of an oversized line: bytes dropped so far.
    discarding: Option<usize>,
}

impl LineFramer {
    /// A framer rejecting lines longer than `max_line` bytes (exclusive
    /// of the newline terminator).
    ///
    /// # Panics
    ///
    /// Panics if `max_line` is zero.
    pub fn new(max_line: usize) -> Self {
        assert!(max_line > 0, "line cap must be positive");
        LineFramer {
            buf: Vec::new(),
            max_line,
            discarding: None,
        }
    }

    /// Feeds a chunk; returns the frames it completed, in order. A chunk
    /// may complete zero frames (partial line) or many (several newlines
    /// in one read).
    pub fn push(&mut self, chunk: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        for &byte in chunk {
            if let Some(dropped) = &mut self.discarding {
                if byte == b'\n' {
                    let dropped = *dropped;
                    self.discarding = None;
                    frames.push(Frame::Oversized { dropped });
                } else {
                    *dropped += 1;
                }
                continue;
            }
            if byte == b'\n' {
                let mut line = std::mem::take(&mut self.buf);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                frames.push(match String::from_utf8(line) {
                    Ok(s) => Frame::Line(s),
                    Err(_) => Frame::BadUtf8,
                });
            } else if self.buf.len() >= self.max_line {
                // The cap is breached: everything buffered plus this byte
                // belongs to a frame we will never parse.
                self.discarding = Some(self.buf.len() + 1);
                self.buf.clear();
            } else {
                self.buf.push(byte);
            }
        }
        frames
    }

    /// Bytes buffered toward an incomplete line (diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reassembles_lines_across_arbitrary_chunk_boundaries() {
        let mut f = LineFramer::new(64);
        let mut frames = Vec::new();
        frames.extend(f.push(b"hel"));
        frames.extend(f.push(b"lo\nwo"));
        frames.extend(f.push(b""));
        frames.extend(f.push(b"rld\n\n"));
        assert_eq!(
            frames,
            vec![
                Frame::Line("hello".into()),
                Frame::Line("world".into()),
                Frame::Line(String::new()),
            ]
        );
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn strips_crlf() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            f.push(b"a\r\nb\n"),
            vec![Frame::Line("a".into()), Frame::Line("b".into()),]
        );
    }

    #[test]
    fn oversized_line_is_rejected_and_framing_resyncs() {
        let mut f = LineFramer::new(4);
        let mut frames = Vec::new();
        frames.extend(f.push(b"toolong"));
        assert!(frames.is_empty(), "verdict waits for the newline");
        frames.extend(f.push(b"er\nok\n"));
        assert_eq!(
            frames,
            vec![Frame::Oversized { dropped: 9 }, Frame::Line("ok".into()),]
        );
    }

    #[test]
    fn exactly_max_line_is_accepted() {
        let mut f = LineFramer::new(4);
        assert_eq!(f.push(b"abcd\n"), vec![Frame::Line("abcd".into())]);
        assert_eq!(f.push(b"abcde\n"), vec![Frame::Oversized { dropped: 5 }]);
    }

    #[test]
    fn invalid_utf8_is_a_typed_frame() {
        let mut f = LineFramer::new(16);
        assert_eq!(
            f.push(b"\xff\xfe\nok\n"),
            vec![Frame::BadUtf8, Frame::Line("ok".into()),]
        );
    }

    /// Printable-ASCII lines (no `\n`, no `\r`), lengths 0..40.
    fn ascii_lines() -> impl Strategy<Value = Vec<String>> {
        let line = prop::collection::vec(32u8..127, 0..40)
            .prop_map(|bytes| String::from_utf8(bytes).unwrap());
        prop::collection::vec(line, 0..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any ASCII-safe line set framed through any chunking comes back
        /// intact and in order.
        #[test]
        fn roundtrips_for_any_chunking(
            lines in ascii_lines(),
            cuts in prop::collection::vec(1usize..7, 0..64),
        ) {
            let mut wire = Vec::new();
            for l in &lines {
                wire.extend_from_slice(l.as_bytes());
                wire.push(b'\n');
            }
            let mut f = LineFramer::new(64);
            let mut got = Vec::new();
            let mut rest: &[u8] = &wire;
            let mut cuts = cuts.into_iter();
            while !rest.is_empty() {
                let n = cuts.next().unwrap_or(rest.len()).min(rest.len());
                let (head, tail) = rest.split_at(n);
                got.extend(f.push(head));
                rest = tail;
            }
            let expect: Vec<Frame> =
                lines.iter().map(|l| Frame::Line(l.clone())).collect();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(f.pending(), 0);
        }

        /// Interleaving oversized junk between valid lines never corrupts
        /// the valid lines, regardless of cap or chunking.
        #[test]
        fn oversized_frames_never_corrupt_neighbours(
            cap in 1usize..16,
            junk_len in 0usize..48,
        ) {
            let mut f = LineFramer::new(cap);
            let junk = vec![b'x'; junk_len];
            let mut wire = b"ab\n".to_vec();
            wire.extend_from_slice(&junk);
            wire.push(b'\n');
            wire.extend_from_slice(b"cd\n");
            let mut got = Vec::new();
            for chunk in wire.chunks(3) {
                got.extend(f.push(chunk));
            }
            // "ab"/"cd" survive whenever they fit the cap; the junk line
            // is either a Line (fits) or exactly one Oversized event.
            let expect_edge = |s: &str| if s.len() <= cap {
                Frame::Line(s.into())
            } else {
                Frame::Oversized { dropped: s.len() }
            };
            let mut expect = vec![expect_edge("ab")];
            expect.push(if junk_len <= cap {
                Frame::Line(String::from_utf8(junk).unwrap())
            } else {
                Frame::Oversized { dropped: junk_len }
            });
            expect.push(expect_edge("cd"));
            prop_assert_eq!(got, expect);
        }
    }
}
