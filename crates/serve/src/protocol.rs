//! Request/response types of the prediction protocol.
//!
//! One request per line, one response line per result. A predict
//! request carries a batch spec (the same text format `spmv-locality
//! batch` reads, with literal newlines escaped as `\n` inside the JSON
//! string) and yields one `report` line per job — byte-identical to the
//! batch command's output, wrapped in `{"id":...,"report":...}` framing
//! — followed by a `done` line. Errors are always typed: a machine-
//! readable [`ErrorCode`] plus a human-readable message.

use crate::json::Json;
use locality_engine::StreamStats;
use std::fmt;

/// Machine-readable error discriminants on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line parsed as JSON but was not a valid request, or its spec
    /// failed to parse/resolve.
    BadRequest,
    /// The service queue is full; retry later.
    Overloaded,
    /// The request's deadline elapsed before its jobs finished.
    DeadlineExceeded,
    /// The request line exceeded the service's line cap.
    OversizedLine,
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// An engine-side failure while running the jobs.
    Internal,
    /// The referenced object (a trace id) is unknown — never retained,
    /// or already evicted from the bounded trace buffer.
    NotFound,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::OversizedLine => "oversized_line",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::NotFound => "not_found",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a batch spec and stream its reports back.
    Predict {
        /// Client-chosen correlation id, echoed on every response line.
        id: String,
        /// Batch spec text (the `batch` command's file format).
        spec: String,
        /// Per-request deadline in milliseconds, overriding any
        /// `deadline_ms` directive inside the spec.
        deadline_ms: Option<u64>,
    },
    /// Return the service telemetry document.
    Status {
        /// Correlation id.
        id: String,
    },
    /// Return the phase tree of a finished predict request.
    Trace {
        /// Correlation id of *this* request.
        id: String,
        /// The predict request id whose trace is wanted.
        request: String,
    },
    /// Return the Prometheus text exposition of the live counters.
    Metrics {
        /// Correlation id.
        id: String,
    },
    /// Ask the service to drain and exit.
    Shutdown {
        /// Correlation id.
        id: String,
    },
}

/// A request that could not be accepted, ready to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// The request id when one could be recovered from the line.
    pub id: Option<String>,
    /// Typed discriminant.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl Request {
    /// Parses one request line.
    ///
    /// On failure the error carries the request `id` whenever the line
    /// was well-formed enough to contain one, so clients can correlate
    /// rejections with their requests.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let value = Json::parse(line).map_err(|e| RequestError {
            id: None,
            code: ErrorCode::BadRequest,
            message: format!("invalid JSON: {e}"),
        })?;
        let bad = |id: Option<String>, message: String| RequestError {
            id,
            code: ErrorCode::BadRequest,
            message,
        };
        if value.get("id").is_none() {
            return Err(bad(None, "missing \"id\"".into()));
        }
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(None, "\"id\" must be a string".into()))?
            .to_string();
        if id.is_empty() {
            return Err(bad(None, "\"id\" must be non-empty".into()));
        }
        let flag = |key: &str| -> Result<bool, RequestError> {
            match value.get(key) {
                None => Ok(false),
                Some(v) => v
                    .as_bool()
                    .filter(|b| *b)
                    .ok_or_else(|| bad(Some(id.clone()), format!("\"{key}\" must be true"))),
            }
        };
        let has_spec = value.get("spec").is_some();
        let has_trace = value.get("trace").is_some();
        let has_status = flag("status")?;
        let has_metrics = flag("metrics")?;
        let has_shutdown = flag("shutdown")?;
        let verbs = [has_spec, has_status, has_trace, has_metrics, has_shutdown]
            .iter()
            .filter(|&&v| v)
            .count();
        if verbs > 1 {
            return Err(bad(
                Some(id),
                "\"spec\", \"status\", \"trace\", \"metrics\" and \"shutdown\" are mutually exclusive"
                    .into(),
            ));
        }
        if has_spec {
            let spec = value
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(Some(id.clone()), "\"spec\" must be a string".into()))?
                .to_string();
            let deadline_ms = match value.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().filter(|ms| *ms > 0).ok_or_else(|| {
                    bad(
                        Some(id.clone()),
                        "\"deadline_ms\" must be a positive integer".into(),
                    )
                })?),
            };
            return Ok(Request::Predict {
                id,
                spec,
                deadline_ms,
            });
        }
        if has_trace {
            let request = value
                .get("trace")
                .and_then(Json::as_str)
                .filter(|r| !r.is_empty())
                .ok_or_else(|| {
                    bad(
                        Some(id.clone()),
                        "\"trace\" must be a non-empty request id".into(),
                    )
                })?
                .to_string();
            return Ok(Request::Trace { id, request });
        }
        if has_status {
            return Ok(Request::Status { id });
        }
        if has_metrics {
            return Ok(Request::Metrics { id });
        }
        if has_shutdown {
            return Ok(Request::Shutdown { id });
        }
        Err(bad(
            Some(id),
            "expected one of \"spec\", \"status\": true, \"trace\": \"<id>\", \"metrics\": true, \"shutdown\": true"
                .into(),
        ))
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A `report` response line: the batch engine's report JSON wrapped in
/// id framing. `report_json` must already be a single-line JSON value
/// (it is `Report::to_json_line` output).
pub fn report_line(id: &str, report_json: &str) -> String {
    format!("{{\"id\":\"{}\",\"report\":{}}}", escape(id), report_json)
}

/// The `done` line closing a predict request's response stream.
pub fn done_line(id: &str, stats: &StreamStats) -> String {
    format!(
        "{{\"id\":\"{}\",\"done\":{{\"matrices\":{},\"jobs\":{},\"profile_hits\":{},\"profile_computations\":{}}}}}",
        escape(id),
        stats.matrices,
        stats.jobs,
        stats.profile_hits,
        stats.profile_computations
    )
}

/// A typed `error` line; `id` is `null` when the line was too broken to
/// carry one.
pub fn error_line(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    let id = match id {
        Some(id) => format!("\"{}\"", escape(id)),
        None => "null".into(),
    };
    format!(
        "{{\"id\":{},\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        id,
        code.label(),
        escape(message)
    )
}

impl RequestError {
    /// Serializes this rejection as its wire line.
    pub fn to_line(&self) -> String {
        error_line(self.id.as_deref(), self.code, &self.message)
    }
}

/// A `status` response line wrapping an already-rendered single-line
/// JSON document (the obs metrics doc).
pub fn status_line(id: &str, body_json: &str) -> String {
    format!("{{\"id\":\"{}\",\"status\":{}}}", escape(id), body_json)
}

/// A `trace` response line wrapping an already-rendered single-line
/// trace document ([`obs::trace::Trace::to_json`] output).
pub fn trace_line(id: &str, trace_json: &str) -> String {
    format!("{{\"id\":\"{}\",\"trace\":{}}}", escape(id), trace_json)
}

/// A `metrics` response line carrying the Prometheus text exposition as
/// a JSON string (newlines become `\n` escapes; clients unescape to
/// recover the scrape body byte-for-byte).
pub fn metrics_line(id: &str, exposition: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"metrics\":\"{}\"}}",
        escape(id),
        escape(exposition)
    )
}

/// Acknowledges a `shutdown` request: the service is draining.
pub fn shutdown_line(id: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"shutdown\":{{\"draining\":true}}}}",
        escape(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_predict_requests() {
        let r = Request::parse(
            r#"{"id": "r1", "spec": "matrix dense 8 8\nmethod paper", "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Predict {
                id: "r1".into(),
                spec: "matrix dense 8 8\nmethod paper".into(),
                deadline_ms: Some(250),
            }
        );
    }

    #[test]
    fn parses_status_and_shutdown() {
        assert_eq!(
            Request::parse(r#"{"id":"s","status":true}"#).unwrap(),
            Request::Status { id: "s".into() }
        );
        assert_eq!(
            Request::parse(r#"{"id":"q","shutdown":true}"#).unwrap(),
            Request::Shutdown { id: "q".into() }
        );
    }

    #[test]
    fn parses_trace_and_metrics() {
        assert_eq!(
            Request::parse(r#"{"id":"t1","trace":"r42"}"#).unwrap(),
            Request::Trace {
                id: "t1".into(),
                request: "r42".into()
            }
        );
        assert_eq!(
            Request::parse(r#"{"id":"m1","metrics":true}"#).unwrap(),
            Request::Metrics { id: "m1".into() }
        );
        let e = Request::parse(r#"{"id":"t2","trace":""}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::parse(r#"{"id":"t3","trace":"r1","metrics":true}"#).unwrap_err();
        assert!(e.message.contains("mutually exclusive"), "{}", e.message);
    }

    #[test]
    fn trace_and_metrics_lines_are_valid_json() {
        let t = trace_line("t1", r#"{"request": "r42", "total_ns": 9, "phases": []}"#);
        let parsed = crate::json::Json::parse(&t).expect("valid JSON");
        assert!(parsed.get("trace").is_some());

        let body = "# TYPE spmv_serve_requests counter\nspmv_serve_requests 3\n";
        let m = metrics_line("m1", body);
        assert!(!m.contains('\n'), "exposition newlines must be escaped");
        let parsed = crate::json::Json::parse(&m).expect("valid JSON");
        // The exposition round-trips through the JSON string unharmed.
        assert_eq!(
            parsed.get("metrics").and_then(crate::json::Json::as_str),
            Some(body)
        );
    }

    #[test]
    fn rejections_are_typed_and_carry_the_id_when_recoverable() {
        let e = Request::parse("not json").unwrap_err();
        assert_eq!((e.id, e.code), (None, ErrorCode::BadRequest));

        let e = Request::parse(r#"{"spec":"x"}"#).unwrap_err();
        assert_eq!(e.id, None);

        let e = Request::parse(r#"{"id":"r7","deadline_ms":5}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r7"));
        assert_eq!(e.code, ErrorCode::BadRequest);

        let e = Request::parse(r#"{"id":"r8","spec":"x","deadline_ms":0}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r8"));

        let e = Request::parse(r#"{"id":"r9","spec":"x","status":true}"#).unwrap_err();
        assert!(e.message.contains("mutually exclusive"), "{}", e.message);
    }

    #[test]
    fn response_lines_are_valid_json() {
        let stats = StreamStats {
            matrices: 2,
            jobs: 4,
            profile_computations: 2,
            profile_hits: 2,
        };
        let lines = [
            report_line("a\"b", r#"{"job":0}"#),
            done_line("r1", &stats),
            error_line(None, ErrorCode::Overloaded, "queue full (8 queued)"),
            error_line(Some("r2"), ErrorCode::DeadlineExceeded, "deadline exceeded"),
            status_line("r3", r#"{"counters":{}}"#),
            shutdown_line("r4"),
        ];
        for line in &lines {
            let parsed = crate::json::Json::parse(line).expect("valid JSON");
            assert!(!line.contains('\n'));
            assert!(parsed.get("id").is_some());
        }
        assert_eq!(
            lines[1],
            r#"{"id":"r1","done":{"matrices":2,"jobs":4,"profile_hits":2,"profile_computations":2}}"#
        );
    }

    #[test]
    fn report_framing_strips_back_to_the_batch_payload() {
        // The acceptance criterion: clients recover the exact batch
        // output by removing the id framing prefix/suffix.
        let payload = r#"{"job":0,"matrix":"dense","l2_misses":123}"#;
        let framed = report_line("req-1", payload);
        let prefix = r#"{"id":"req-1","report":"#;
        assert!(framed.starts_with(prefix) && framed.ends_with('}'));
        assert_eq!(&framed[prefix.len()..framed.len() - 1], payload);
    }
}
