//! `spmv-serve` — the long-lived prediction service over the batch
//! engine.
//!
//! The batch command answers one spec and exits; every invocation pays
//! the full profile-computation cost even when clients keep asking
//! about the same matrices. This crate turns the engine into a daemon:
//! line-delimited JSON requests arrive over a Unix socket and/or TCP
//! listener, predict jobs run on a bounded executor pool against a
//! **shared LRU [`ProfileCache`](locality_engine::ProfileCache)**, and
//! each result line streams back the moment it exists — byte-identical
//! to `spmv-locality batch` output under the id framing.
//!
//! Module map:
//!
//! * [`codec`] — newline framing with a line cap and typed
//!   oversize/UTF-8 rejection;
//! * [`json`] — the request-side JSON value parser (the offline build
//!   has no serde);
//! * [`protocol`] — request/response types and their wire rendering;
//! * [`server`] — listeners, sessions, the bounded queue, executors,
//!   and graceful drain;
//! * [`signal`] — SIGINT/SIGTERM routed into a pollable shutdown flag.
//!
//! Service guarantees, in one place:
//!
//! * **Backpressure**: the request queue is bounded; a full queue
//!   answers `overloaded` immediately instead of buffering.
//! * **Deadlines**: per-request budgets start at admission and cancel
//!   cooperatively at the engine's checkpoints; exceeding one yields a
//!   typed `deadline_exceeded` error, never a hang.
//! * **Graceful drain**: shutdown (signal or protocol) stops intake,
//!   finishes accepted work, and still delivers those responses.

#![warn(missing_docs)]

pub mod codec;
pub mod json;
pub mod protocol;
pub mod server;
pub mod signal;

pub use codec::{Frame, LineFramer};
pub use json::{Json, JsonError};
pub use protocol::{ErrorCode, Request, RequestError};
pub use server::{ServeConfig, ServeSummary, Server};
