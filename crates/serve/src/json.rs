//! A minimal JSON value parser for request lines.
//!
//! The offline build environment has no serde; the request side of the
//! wire protocol needs a real parser (clients send arbitrary key order,
//! escapes, nested values), so this module implements one over the same
//! grammar `obs::json::validate` checks — objects, arrays, strings with
//! standard escapes, f64 numbers, literals. It is deliberately small:
//! no streaming, no borrowed strings, inputs are single protocol lines
//! already capped by the codec's line limit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys keep one value each (later duplicate
/// keys win, like most lenient parsers); `BTreeMap` gives deterministic
/// iteration for error messages and tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: byte offset into the input plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value; trailing whitespace is allowed, trailing
    /// data is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits (rejects fractions, negatives and magnitudes above 2^53
    /// where f64 stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9007199254740992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member names, for unknown-key diagnostics. Empty for
    /// non-objects.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", *c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes.len() >= self.pos + lit.len()
            && &self.bytes[self.pos..self.pos + lit.len()] == lit
        {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(JsonError {
                        offset: start,
                        message: "unterminated string".into(),
                    })
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; find the char at this byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() < self.pos + 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII run");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("malformed number '{text}'"),
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: "non-finite number".into(),
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("[1, \"two\", null]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Str("two".into()), Json::Null])
        );
        let obj = Json::parse("{\"a\": {\"b\": [true]}, \"c\": 3}").unwrap();
        assert_eq!(obj.get("c").and_then(Json::as_u64), Some(3));
        assert_eq!(
            obj.get("a").and_then(|a| a.get("b")),
            Some(&Json::Arr(vec![Json::Bool(true)]))
        );
    }

    #[test]
    fn resolves_escapes() {
        let v = Json::parse(r#""line\none \"quoted\" tab\tuA 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\none \"quoted\" tab\tuA \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "1.2.3",
            "\"bad \\x escape\"",
            "\"lone \\ud800 surrogate\"",
            "\"raw \u{1} control\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse("{\"k\": 1, \"k\": 2}").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn roundtrips_obs_metrics_documents() {
        // The STATUS endpoint embeds obs::MetricsDoc output; this parser
        // must accept everything that serializer emits.
        let mut agg = obs::Aggregate::default();
        agg.counters.insert("serve.requests".into(), 3);
        agg.gauges.insert("serve.inflight_peak".into(), 2);
        let doc = obs::MetricsDoc {
            command: "serve",
            aggregate: &agg,
        };
        let parsed = Json::parse(&doc.to_json()).expect("pretty form parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert!(
            Json::parse(&doc.to_json_line()).is_ok(),
            "compact form parses"
        );
    }
}
