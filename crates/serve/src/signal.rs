//! Process-wide shutdown and dump flags, settable from Unix signals.
//!
//! The workspace carries no `libc` crate, but every Rust binary on
//! Linux already links the C library, so `signal(2)` can be declared
//! directly. The handlers are async-signal-safe: they only store to
//! atomics. Listener and session loops poll the flags (they run with
//! short accept/read timeouts), which turns SIGINT/SIGTERM into a
//! graceful drain instead of an abrupt exit, and SIGQUIT into a
//! flight-recorder dump without stopping the service.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static DUMP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGQUIT: i32 = 3;
const SIGTERM: i32 = 15;

extern "C" {
    // `sighandler_t signal(int, sighandler_t)`; the returned previous
    // handler is not needed, so it is left as an opaque word.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn on_dump_signal(_signum: i32) {
    DUMP.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM into [`shutdown_requested`], and SIGQUIT
/// into [`take_dump_request`] (a diagnostic dump, not a shutdown — the
/// default SIGQUIT action would core-dump the daemon, which is exactly
/// the moment an operator wants the flight recorder instead).
pub fn install_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
        signal(SIGQUIT, on_dump_signal);
    }
}

/// Raises the shutdown flag programmatically (the protocol's `shutdown`
/// request uses the same path as the signals).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a shutdown has been requested by signal or protocol.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the dump flag programmatically (tests use this in place of an
/// actual SIGQUIT).
pub fn request_dump() {
    DUMP.store(true, Ordering::SeqCst);
}

/// Consumes a pending dump request, returning whether one was pending.
/// The accept loop polls this once per iteration; swap-to-false makes
/// each SIGQUIT produce exactly one dump.
pub fn take_dump_request() -> bool {
    DUMP.swap(false, Ordering::SeqCst)
}
