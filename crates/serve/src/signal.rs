//! Process-wide shutdown flag, settable from Unix signals.
//!
//! The workspace carries no `libc` crate, but every Rust binary on
//! Linux already links the C library, so `signal(2)` can be declared
//! directly. The handler is async-signal-safe: it only stores to an
//! atomic. Listener and session loops poll the flag (they run with
//! short accept/read timeouts), which turns SIGINT/SIGTERM into a
//! graceful drain instead of an abrupt exit.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    // `sighandler_t signal(int, sighandler_t)`; the returned previous
    // handler is not needed, so it is left as an opaque word.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM into [`shutdown_requested`].
pub fn install_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Raises the shutdown flag programmatically (the protocol's `shutdown`
/// request uses the same path as the signals).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a shutdown has been requested by signal or protocol.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}
