//! The daemon itself: listeners, per-connection sessions, the bounded
//! request queue, and the executor pool.
//!
//! Threading model — three kinds of thread, all plain `std`:
//!
//! * the **accept loop** ([`Server::run`]) polls the non-blocking
//!   listeners and spawns one session per connection;
//! * a **session** thread reads its connection with a short timeout,
//!   frames lines, parses requests and either answers inline (`status`,
//!   `shutdown`, rejections) or enqueues the predict job;
//! * **executor** threads pop predict jobs from the bounded queue and
//!   run them through [`locality_engine::run_streaming`], writing each
//!   report line through the connection's shared writer the moment it
//!   exists.
//!
//! Backpressure is the queue bound: a predict request arriving with the
//! queue full is rejected immediately with a typed `overloaded` error —
//! the service never buffers unboundedly. Deadlines start at *enqueue*
//! (queue wait spends the client's budget) and cancel cooperatively at
//! the engine's checkpoints. Shutdown — SIGINT, SIGTERM or a `shutdown`
//! request — stops accepting, closes the queue, and drains: jobs
//! already accepted run to completion and their responses are still
//! delivered on connections the clients keep open.
//!
//! The **observability plane** rides along without touching report
//! bytes:
//!
//! * every admitted predict request carries an [`obs::RequestCtx`]
//!   from admission through the engine; its finished phase tree
//!   (queue-wait, cache-lookup, compute, per-domain/per-shard work,
//!   stream-out) lands in a bounded trace buffer answerable via a
//!   `trace` request;
//! * a **sampler** thread (`sample_ms` tick) snapshots the live
//!   counters into a bounded [`obs::series::SeriesRing`]; `status`
//!   responses carry windowed rates over 10s/1m/5m;
//! * a `metrics` request — and an optional `--prometheus` HTTP
//!   listener sharing the same non-blocking accept loop — renders the
//!   live counters as Prometheus text exposition;
//! * a **flight recorder** ([`obs::events`]) keeps the newest
//!   admissions/rejections/deadline/eviction/panic events and dumps
//!   them to stderr (and `flight_file`) on SIGQUIT and on executor
//!   panic.

use crate::codec::{Frame, LineFramer};
use crate::protocol::{self, ErrorCode, Request, RequestError};
use crate::signal;
use locality_engine::{BatchSpec, CancelToken, Cancelled, EngineError, ProfileCache};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Session read timeout; bounds shutdown latency per connection.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on (the daemon owns the path: a stale
    /// file there is removed at bind, the live one at shutdown).
    pub unix: Option<PathBuf>,
    /// TCP address to listen on, e.g. `127.0.0.1:7070`.
    pub tcp: Option<String>,
    /// Executor threads — the number of predict requests in flight.
    pub executors: usize,
    /// Queue bound: predict requests accepted but not yet started.
    /// Zero disables queueing entirely (only useful in tests).
    pub queue: usize,
    /// Shared profile cache capacity (LRU entries).
    pub cache: usize,
    /// Request line cap in bytes; longer lines are rejected.
    pub max_line: usize,
    /// Deadline applied to predict requests that bring none of their
    /// own (request field first, then the spec's `deadline_ms`).
    pub default_deadline_ms: Option<u64>,
    /// Machine applied to predict requests whose spec has no `machine`
    /// directive of its own. `None` keeps the engine default (the a64fx
    /// preset) — and the legacy report bytes.
    pub default_machine: Option<machine::MachineSpec>,
    /// Sampler tick in milliseconds for the rolling time-series
    /// (windowed rates in `status`). Zero disables the sampler thread.
    pub sample_ms: u64,
    /// Optional TCP address for a plain-HTTP Prometheus scrape
    /// endpoint, e.g. `127.0.0.1:9464`. `None` leaves scraping to the
    /// protocol's `metrics` request.
    pub prometheus: Option<String>,
    /// Optional file the flight-recorder dump is appended to (stderr
    /// always receives it).
    pub flight_file: Option<PathBuf>,
    /// How many finished request traces the daemon retains for `trace`
    /// lookups (oldest evicted first). Zero disables retention.
    pub trace_buffer: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            unix: None,
            tcp: None,
            executors: 2,
            queue: 64,
            cache: 256,
            max_line: 1 << 20,
            default_deadline_ms: None,
            default_machine: None,
            sample_ms: 1000,
            prometheus: None,
            flight_file: None,
            trace_buffer: 64,
        }
    }
}

/// What the daemon did, for the operator's exit summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (predict + status + shutdown).
    pub requests: u64,
    /// Predict requests completed with a `done` line.
    pub completed: u64,
    /// Error lines written.
    pub errors: u64,
    /// Predict requests that were in flight when shutdown began and
    /// were drained to completion instead of dropped.
    pub drained: u64,
}

/// Service counters, readable at any time from any thread (unlike the
/// obs thread-locals, which merge only at flush); the `STATUS` endpoint
/// reads these plus the shared cache's own counters.
#[derive(Default)]
struct ServiceStats {
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    write_errors: AtomicU64,
    inflight: AtomicUsize,
    inflight_peak: AtomicUsize,
    drained: AtomicU64,
}

/// A connection's write half, shared between its session thread and the
/// executors streaming results back.
type Out = Arc<Mutex<Box<dyn Write + Send>>>;

/// An accepted predict request waiting for an executor.
struct QueuedRequest {
    id: String,
    spec: BatchSpec,
    token: CancelToken,
    out: Out,
    /// When the request entered the queue; the `queue-wait` phase spans
    /// from here to executor pickup.
    admitted: Instant,
    /// The request's trace accumulator, created at admission.
    ctx: obs::RequestCtx,
}

struct QueueState {
    jobs: VecDeque<QueuedRequest>,
    closing: bool,
}

/// Bounded buffer of finished request traces, newest kept.
struct TraceStore {
    capacity: usize,
    traces: VecDeque<obs::trace::Trace>,
}

impl TraceStore {
    fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity,
            traces: VecDeque::new(),
        }
    }

    fn insert(&mut self, trace: obs::trace::Trace) {
        if self.capacity == 0 {
            return;
        }
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back(trace);
    }

    /// The newest retained trace for `request_id` (ids are
    /// client-chosen and may repeat; latest wins).
    fn get(&self, request_id: &str) -> Option<&obs::trace::Trace> {
        self.traces
            .iter()
            .rev()
            .find(|t| t.request_id == request_id)
    }
}

struct Shared {
    config: ServeConfig,
    cache: ProfileCache,
    queue: Mutex<QueueState>,
    ready: Condvar,
    stats: ServiceStats,
    started: Instant,
    traces: Mutex<TraceStore>,
    /// End-to-end (admission → response) latency of predict requests.
    latency: Mutex<obs::Hist>,
    /// The sampler's rolling time-series.
    series: Mutex<obs::series::SeriesRing>,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    shared: Arc<Shared>,
    unix_listener: Option<UnixListener>,
    tcp_listener: Option<TcpListener>,
    prom_listener: Option<TcpListener>,
}

impl Server {
    /// Binds the configured listeners. At least one of `unix`/`tcp`
    /// must be set.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        if config.unix.is_none() && config.tcp.is_none() {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                "serve needs a unix socket path or a tcp address to listen on",
            ));
        }
        let unix_listener = match &config.unix {
            Some(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let tcp_listener = match &config.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let prom_listener = match &config.prometheus {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let cache = ProfileCache::bounded(config.cache.max(1));
        // The flight recorder covers the daemon's whole lifetime; the
        // engine's cache-eviction events land in the same ring.
        obs::events::enable(obs::events::DEFAULT_CAPACITY);
        let series_capacity = obs::series::SeriesRing::capacity_for_tick(config.sample_ms.max(1));
        let trace_buffer = config.trace_buffer;
        Ok(Server {
            shared: Arc::new(Shared {
                config,
                cache,
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    closing: false,
                }),
                ready: Condvar::new(),
                stats: ServiceStats::default(),
                started: Instant::now(),
                traces: Mutex::new(TraceStore::new(trace_buffer)),
                latency: Mutex::new(obs::Hist::default()),
                series: Mutex::new(obs::series::SeriesRing::new(series_capacity)),
            }),
            unix_listener,
            tcp_listener,
            prom_listener,
        })
    }

    /// The bound TCP address, when a TCP listener was configured (lets
    /// callers bind port 0 and discover the real port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The bound Prometheus scrape address, when one was configured.
    pub fn prometheus_addr(&self) -> Option<SocketAddr> {
        self.prom_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Serves until shutdown is requested (signal or protocol), then
    /// drains and returns the summary.
    pub fn run(self) -> ServeSummary {
        let shared = &self.shared;
        let executors: Vec<JoinHandle<()>> = (0..shared.config.executors.max(1))
            .map(|_| {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let sampler: Option<JoinHandle<()>> = (shared.config.sample_ms > 0).then(|| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || sampler_loop(&shared))
        });

        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        while !signal::shutdown_requested() {
            if signal::take_dump_request() {
                dump_flight(&shared.config);
            }
            let mut accepted = false;
            if let Some(listener) = &self.unix_listener {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        if let Ok(writer) = stream.try_clone() {
                            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                            sessions.push(spawn_session(shared, stream, Box::new(writer)));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if let Some(listener) = &self.tcp_listener {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        if let Ok(writer) = stream.try_clone() {
                            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                            sessions.push(spawn_session(shared, stream, Box::new(writer)));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if let Some(listener) = &self.prom_listener {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        let shared = Arc::clone(shared);
                        sessions.push(std::thread::spawn(move || {
                            serve_prometheus_scrape(&shared, stream);
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            sessions.retain(|handle| !handle.is_finished());
            if !accepted {
                std::thread::sleep(POLL_INTERVAL);
            }
        }

        // Drain: whatever is in flight now finishes; nothing new enters.
        let drained = shared.stats.inflight.load(Ordering::SeqCst) as u64;
        shared.stats.drained.store(drained, Ordering::SeqCst);
        {
            let mut queue = lock(&shared.queue);
            queue.closing = true;
            shared.ready.notify_all();
        }
        for handle in sessions {
            log_worker_panic(handle.join(), "session worker");
        }
        for handle in executors {
            log_worker_panic(handle.join(), "executor worker");
        }
        if let Some(handle) = sampler {
            log_worker_panic(handle.join(), "sampler");
        }
        // A SIGQUIT that raced the shutdown still gets its dump.
        if signal::take_dump_request() {
            dump_flight(&shared.config);
        }
        if let Some(path) = &shared.config.unix {
            let _ = std::fs::remove_file(path);
        }

        // One obs flush for the whole service lifetime (the per-thread
        // span/counter data was flushed by each executor as it exited).
        let stats = &shared.stats;
        obs::add(
            "serve.connections",
            stats.connections.load(Ordering::SeqCst),
        );
        obs::add("serve.requests", stats.requests.load(Ordering::SeqCst));
        obs::add("serve.completed", stats.completed.load(Ordering::SeqCst));
        obs::add("serve.errors", stats.errors.load(Ordering::SeqCst));
        obs::add("serve.overloaded", stats.overloaded.load(Ordering::SeqCst));
        obs::add("serve.drained", drained);
        obs::gauge_max(
            "serve.inflight_peak",
            stats.inflight_peak.load(Ordering::SeqCst) as u64,
        );
        shared.cache.flush_obs();
        obs::flush_thread();

        ServeSummary {
            connections: stats.connections.load(Ordering::SeqCst),
            requests: stats.requests.load(Ordering::SeqCst),
            completed: stats.completed.load(Ordering::SeqCst),
            errors: stats.errors.load(Ordering::SeqCst),
            drained,
        }
    }
}

/// Reports a worker panic to stderr during shutdown instead of silently
/// dropping the payload (the drain must still join every other worker,
/// so it logs rather than re-panics).
fn log_worker_panic<T>(result: std::thread::Result<T>, what: &str) {
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        eprintln!("spmv-locality serve: {what} panicked: {msg}");
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking writer must not wedge the daemon; the guarded state
    // stays consistent (whole lines, whole queue entries).
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Writes one response line (appending `\n`) under the connection's
/// writer lock.
fn write_line(shared: &Shared, out: &Out, line: &str) {
    let mut writer = lock(out);
    let result = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
    if result.is_err() {
        shared.stats.write_errors.fetch_add(1, Ordering::SeqCst);
    }
}

fn write_error(shared: &Shared, out: &Out, id: Option<&str>, code: ErrorCode, message: &str) {
    shared.stats.errors.fetch_add(1, Ordering::SeqCst);
    if code == ErrorCode::Overloaded {
        shared.stats.overloaded.fetch_add(1, Ordering::SeqCst);
    }
    write_line(shared, out, &protocol::error_line(id, code, message));
}

fn spawn_session<R>(
    shared: &Arc<Shared>,
    reader: R,
    writer: Box<dyn Write + Send>,
) -> JoinHandle<()>
where
    R: Read + Send + 'static,
{
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        shared.stats.connections.fetch_add(1, Ordering::SeqCst);
        let out: Out = Arc::new(Mutex::new(writer));
        run_session(&shared, reader, &out);
    })
}

fn run_session<R: Read>(shared: &Shared, mut reader: R, out: &Out) {
    let mut framer = LineFramer::new(shared.config.max_line);
    let mut buf = [0u8; 4096];
    while !signal::shutdown_requested() {
        let n = match reader.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        for frame in framer.push(&buf[..n]) {
            handle_frame(shared, out, frame);
        }
    }
}

fn handle_frame(shared: &Shared, out: &Out, frame: Frame) {
    let line = match frame {
        Frame::Line(line) => line,
        Frame::Oversized { dropped } => {
            let message = format!(
                "request line exceeded the {}-byte cap ({dropped} bytes dropped)",
                shared.config.max_line
            );
            write_error(shared, out, None, ErrorCode::OversizedLine, &message);
            return;
        }
        Frame::BadUtf8 => {
            write_error(
                shared,
                out,
                None,
                ErrorCode::BadRequest,
                "request line is not valid UTF-8",
            );
            return;
        }
    };
    if line.trim().is_empty() {
        return; // blank keep-alive lines are fine
    }
    let request = match Request::parse(&line) {
        Ok(request) => request,
        Err(RequestError { id, code, message }) => {
            write_error(shared, out, id.as_deref(), code, &message);
            return;
        }
    };
    shared.stats.requests.fetch_add(1, Ordering::SeqCst);
    match request {
        Request::Predict {
            id,
            spec,
            deadline_ms,
        } => submit_predict(shared, out, id, &spec, deadline_ms),
        Request::Status { id } => {
            let body = status_document(shared);
            write_line(shared, out, &protocol::status_line(&id, &body));
        }
        Request::Trace { id, request } => {
            let json = lock(&shared.traces).get(&request).map(|t| t.to_json());
            match json {
                Some(json) => write_line(shared, out, &protocol::trace_line(&id, &json)),
                None => {
                    let message = format!(
                        "no trace retained for request \"{request}\" (buffer keeps the newest {})",
                        shared.config.trace_buffer
                    );
                    write_error(shared, out, Some(&id), ErrorCode::NotFound, &message);
                }
            }
        }
        Request::Metrics { id } => {
            let body = metrics_document(shared);
            write_line(shared, out, &protocol::metrics_line(&id, &body));
        }
        Request::Shutdown { id } => {
            write_line(shared, out, &protocol::shutdown_line(&id));
            signal::request_shutdown();
        }
    }
}

fn submit_predict(
    shared: &Shared,
    out: &Out,
    id: String,
    spec_text: &str,
    deadline_ms: Option<u64>,
) {
    let mut spec = match BatchSpec::parse(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            let message = format!("invalid spec: {e}");
            write_error(shared, out, Some(&id), ErrorCode::BadRequest, &message);
            return;
        }
    };
    // A spec with its own `machine` directives wins; otherwise the
    // daemon's default machine (if any) applies.
    if spec.machines.is_empty() {
        if let Some(m) = &shared.config.default_machine {
            spec.machines.push(m.clone());
        }
    }
    // Deadline precedence: request field, spec directive, server default.
    // The clock starts here — time spent queued is the client's budget.
    let budget = deadline_ms
        .or(spec.deadline_ms)
        .or(shared.config.default_deadline_ms);
    let token = match budget {
        Some(ms) => CancelToken::with_deadline_ms(ms),
        None => CancelToken::never(),
    };
    let request = QueuedRequest {
        ctx: obs::RequestCtx::new(id.as_str()),
        id,
        spec,
        token,
        out: Arc::clone(out),
        admitted: Instant::now(),
    };
    let mut queue = lock(&shared.queue);
    if queue.closing {
        let id = request.id;
        drop(queue);
        obs::events::record("shutting_down", || {
            format!("request {id} rejected: service draining")
        });
        write_error(
            shared,
            out,
            Some(&id),
            ErrorCode::ShuttingDown,
            "service is draining and accepts no new work",
        );
        return;
    }
    if queue.jobs.len() >= shared.config.queue {
        let depth = queue.jobs.len();
        let message = format!("queue full ({depth} request(s) queued); retry later");
        let id = request.id;
        drop(queue);
        obs::events::record("overloaded", || {
            format!("request {id} rejected: queue full ({depth} queued)")
        });
        write_error(shared, out, Some(&id), ErrorCode::Overloaded, &message);
        return;
    }
    let depth = queue.jobs.len() + 1;
    obs::events::record("admit", || {
        format!("request {} admitted (queue depth {depth})", request.id)
    });
    queue.jobs.push_back(request);
    let inflight = shared.stats.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    shared
        .stats
        .inflight_peak
        .fetch_max(inflight, Ordering::SeqCst);
    shared.ready.notify_one();
}

fn executor_loop(shared: &Shared) {
    loop {
        let request = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(request) = queue.jobs.pop_front() {
                    break Some(request);
                }
                if queue.closing {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, POLL_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(request) = request else {
            // Queue closed and empty: flush this thread's obs data
            // (spans recorded by the engine during our requests).
            obs::flush_thread();
            return;
        };
        // A panicking request must not take the executor thread (and
        // its queue slot) with it: contain it, dump the flight
        // recorder, answer the client with a typed error, and keep
        // serving.
        let id = request.id.clone();
        let out = Arc::clone(&request.out);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(shared, request)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            obs::events::record("panic", || {
                format!("executor panicked on request {id}: {msg}")
            });
            dump_flight(&shared.config);
            write_error(
                shared,
                &out,
                Some(&id),
                ErrorCode::Internal,
                "executor panicked while running the request",
            );
        }
        shared.stats.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_one(shared: &Shared, request: QueuedRequest) {
    let QueuedRequest {
        id,
        spec,
        token,
        out,
        admitted,
        ctx,
    } = request;
    ctx.record_since(&["queue-wait"], admitted, Some("serve.phase.queue_wait_ns"));
    // A request whose deadline elapsed while queued fails fast without
    // touching the engine.
    if let Some(reason) = token.cancelled() {
        if matches!(reason, Cancelled::DeadlineExceeded) {
            obs::events::record("deadline", || format!("request {id} expired while queued"));
        }
        finish_request(shared, &ctx);
        write_error(
            shared,
            &out,
            Some(&id),
            cancel_code(reason),
            &reason.to_string(),
        );
        return;
    }
    let result =
        locality_engine::run_streaming_traced(&spec, &shared.cache, &token, &ctx, |report| {
            write_line(
                shared,
                &out,
                &protocol::report_line(&id, &report.to_json_line()),
            );
        });
    // Seal the trace *before* the final response line goes out: a client
    // that sends `TRACE <id>` the moment it reads `done` must find it.
    match result {
        Ok(stats) => {
            shared.stats.completed.fetch_add(1, Ordering::SeqCst);
            finish_request(shared, &ctx);
            write_line(shared, &out, &protocol::done_line(&id, &stats));
        }
        Err(e) => {
            if matches!(&e, EngineError::Cancelled(Cancelled::DeadlineExceeded)) {
                obs::events::record("deadline", || {
                    format!("request {id} hit its deadline mid-run")
                });
            }
            let code = match &e {
                EngineError::Cancelled(reason) => cancel_code(*reason),
                EngineError::Spec(_)
                | EngineError::Matrix { .. }
                | EngineError::Scenario { .. } => ErrorCode::BadRequest,
            };
            finish_request(shared, &ctx);
            write_error(shared, &out, Some(&id), code, &e.to_string());
        }
    }
}

/// Seals a request's trace into the trace buffer, folds its end-to-end
/// latency into the live histogram, and flushes this executor's
/// thread-local obs data so the sampler and `metrics` scrapes see the
/// engine's counters while the daemon is still running.
fn finish_request(shared: &Shared, ctx: &obs::RequestCtx) {
    if let Some(trace) = ctx.finish() {
        lock(&shared.latency).record(trace.total_ns);
        obs::observe("serve.request_latency_ns", trace.total_ns);
        lock(&shared.traces).insert(trace);
    }
    if obs::enabled() {
        obs::flush_thread();
    }
}

fn cancel_code(reason: Cancelled) -> ErrorCode {
    match reason {
        Cancelled::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        Cancelled::Shutdown => ErrorCode::ShuttingDown,
    }
}

/// The live counters/gauges as an [`obs::Aggregate`]: service atomics,
/// the shared cache's SLO counters, and the end-to-end request-latency
/// histogram (whose JSON form carries `p50`/`p95`/`p99`). Both the
/// `STATUS` document and the Prometheus exposition build on this.
fn live_aggregate(shared: &Shared) -> obs::Aggregate {
    let stats = &shared.stats;
    let cache = &shared.cache;
    let mut agg = obs::Aggregate::default();
    let counters: [(&str, u64); 11] = [
        (
            "serve.connections",
            stats.connections.load(Ordering::SeqCst),
        ),
        ("serve.requests", stats.requests.load(Ordering::SeqCst)),
        ("serve.completed", stats.completed.load(Ordering::SeqCst)),
        ("serve.errors", stats.errors.load(Ordering::SeqCst)),
        ("serve.overloaded", stats.overloaded.load(Ordering::SeqCst)),
        (
            "serve.write_errors",
            stats.write_errors.load(Ordering::SeqCst),
        ),
        ("engine.cache.hits", cache.hits()),
        ("engine.cache.computations", cache.computations()),
        ("engine.cache.evictions", cache.evictions()),
        ("engine.cache.admission_skips", cache.admission_skips()),
        ("engine.cache.cancellations", cache.cancellations()),
    ];
    for (name, value) in counters {
        agg.counters.insert(name.to_string(), value);
    }
    let gauges: [(&str, u64); 6] = [
        (
            "serve.uptime_ms",
            shared.started.elapsed().as_millis() as u64,
        ),
        (
            "serve.inflight",
            stats.inflight.load(Ordering::SeqCst) as u64,
        ),
        (
            "serve.inflight_peak",
            stats.inflight_peak.load(Ordering::SeqCst) as u64,
        ),
        ("serve.queue_depth", lock(&shared.queue).jobs.len() as u64),
        ("engine.cache.size", cache.len() as u64),
        (
            "engine.cache.hit_rate_pct",
            cache.hit_rate_pct().round() as u64,
        ),
    ];
    for (name, value) in gauges {
        agg.gauges.insert(name.to_string(), value);
    }
    let latency = lock(&shared.latency).clone();
    if latency.count > 0 {
        agg.histograms
            .insert("serve.request_latency_ns".to_string(), latency);
    }
    agg
}

/// The `STATUS` body: the live aggregate rendered as a one-line obs
/// metrics document, extended with a `"series"` member carrying the
/// sampler's windowed rates.
fn status_document(shared: &Shared) -> String {
    let agg = live_aggregate(shared);
    let doc = obs::MetricsDoc {
        command: "serve",
        aggregate: &agg,
    }
    .to_json_line();
    // Splice the series object in before the document's closing brace;
    // the document is a single-line JSON object by construction.
    let series = series_json(shared);
    format!("{},\"series\": {}}}", &doc[..doc.len() - 1], series)
}

/// The `METRICS` body: the live aggregate — merged with the global obs
/// aggregate when `--obs` telemetry is enabled, so engine spans,
/// counters and phase histograms ride along — rendered as Prometheus
/// text exposition.
fn metrics_document(shared: &Shared) -> String {
    let mut agg = live_aggregate(shared);
    if obs::enabled() {
        agg.merge(&obs::snapshot());
    }
    obs::prom::render(&agg)
}

/// An `Option<f64>` as a JSON number or `null` (honest absence: a
/// window with too few samples has no rate, not a zero one).
fn fmt_rate(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "null".to_string(),
    }
}

/// The `"series"` member of the `STATUS` document: for each window,
/// refs/sec, jobs/sec, cache hit-rate, queue depth and evictions/sec
/// derived from the sampler's ring.
fn series_json(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let ring = lock(&shared.series);
    let now_ms = shared.started.elapsed().as_millis() as u64;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"sample_ms\": {}, \"samples\": {}, \"windows\": {{",
        shared.config.sample_ms,
        ring.len()
    );
    let mut first = true;
    for (label, width) in obs::series::WINDOWS {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let refs = fmt_rate(ring.rate_per_sec(now_ms, width, "memtrace.cursor.refs"));
        let jobs = fmt_rate(ring.rate_per_sec(now_ms, width, "serve.completed"));
        let hit_rate = fmt_rate(ring.ratio_pct(
            now_ms,
            width,
            "engine.cache.hits",
            &["engine.cache.hits", "engine.cache.computations"],
        ));
        let evictions = fmt_rate(ring.rate_per_sec(now_ms, width, "engine.cache.evictions"));
        let depth = match ring.gauge_max(now_ms, width, "serve.queue_depth") {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "\"{label}\": {{\"refs_per_sec\": {refs}, \"jobs_per_sec\": {jobs}, \
             \"cache_hit_rate_pct\": {hit_rate}, \"queue_depth\": {depth}, \
             \"evictions_per_sec\": {evictions}}}"
        );
    }
    out.push_str("}}");
    out
}

/// One sampler tick: the cumulative live counters plus instantaneous
/// gauges, stamped with milliseconds since daemon start. When the obs
/// sink is enabled the global aggregate's reference counter rides along
/// so `refs_per_sec` windows resolve.
fn live_sample(shared: &Shared) -> obs::series::Sample {
    let stats = &shared.stats;
    let cache = &shared.cache;
    let mut sample = obs::series::Sample {
        at_ms: shared.started.elapsed().as_millis() as u64,
        ..Default::default()
    };
    let counters: [(&str, u64); 7] = [
        ("serve.requests", stats.requests.load(Ordering::SeqCst)),
        ("serve.completed", stats.completed.load(Ordering::SeqCst)),
        ("serve.errors", stats.errors.load(Ordering::SeqCst)),
        ("serve.overloaded", stats.overloaded.load(Ordering::SeqCst)),
        ("engine.cache.hits", cache.hits()),
        ("engine.cache.computations", cache.computations()),
        ("engine.cache.evictions", cache.evictions()),
    ];
    for (name, value) in counters {
        sample.counters.insert(name.to_string(), value);
    }
    if obs::enabled() {
        let agg = obs::snapshot();
        if let Some(&refs) = agg.counters.get("memtrace.cursor.refs") {
            sample
                .counters
                .insert("memtrace.cursor.refs".to_string(), refs);
        }
    }
    let gauges: [(&str, u64); 3] = [
        (
            "serve.inflight",
            stats.inflight.load(Ordering::SeqCst) as u64,
        ),
        ("serve.queue_depth", lock(&shared.queue).jobs.len() as u64),
        ("engine.cache.size", cache.len() as u64),
    ];
    for (name, value) in gauges {
        sample.gauges.insert(name.to_string(), value);
    }
    sample
}

/// The sampler thread: pushes one [`live_sample`] per `sample_ms` tick
/// into the bounded series ring until shutdown. Sleeps in
/// [`POLL_INTERVAL`] slices so the drain never waits a full tick.
fn sampler_loop(shared: &Shared) {
    let tick = Duration::from_millis(shared.config.sample_ms.max(1));
    let mut next = Instant::now() + tick;
    while !signal::shutdown_requested() {
        std::thread::sleep(POLL_INTERVAL.min(tick));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + tick;
        let sample = live_sample(shared);
        lock(&shared.series).push(sample);
    }
}

/// Writes the flight-recorder dump to stderr and, when configured, to
/// the flight file (append — successive dumps accumulate).
fn dump_flight(config: &ServeConfig) {
    let dump = obs::events::render_dump();
    eprint!("{dump}");
    if let Some(path) = &config.flight_file {
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(dump.as_bytes()));
        if let Err(e) = appended {
            eprintln!(
                "spmv-locality serve: cannot append flight dump to {}: {e}",
                path.display()
            );
        }
    }
}

/// Answers one Prometheus scrape on the dedicated HTTP listener: reads
/// the request head (best effort — the exposition is the same whatever
/// the path), writes one `200` with the text-format body, closes.
fn serve_prometheus_scrape(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the request head, EOF, or
    // timeout; scrapers send tiny GETs, so a few reads suffice.
    for _ in 0..64 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    let body = metrics_document(shared);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    if stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.flush())
        .is_err()
    {
        shared.stats.write_errors.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn send(conn: &mut TcpStream, line: &str) {
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        conn.flush().unwrap();
    }

    /// One test drives a whole server lifecycle (the shutdown flag is
    /// process-global, so concurrent server tests would interfere; the
    /// CLI integration tests run servers in subprocesses instead).
    #[test]
    fn end_to_end_over_tcp() {
        let server = Server::bind(ServeConfig {
            tcp: Some("127.0.0.1:0".into()),
            executors: 2,
            queue: 8,
            cache: 32,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.tcp_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let conn = TcpStream::connect(addr).unwrap();
        let mut lines = BufReader::new(conn.try_clone().unwrap()).lines();
        let mut conn = conn;
        let mut next = || Json::parse(&lines.next().unwrap().unwrap()).unwrap();

        // The same spec the engine's own tests use, with its newlines as
        // JSON \n escapes.
        let spec = r"corpus count=2 scale=64 seed=7\nsettings off\nmethods B\nthreads 1\nscale 64";

        send(&mut conn, &format!(r#"{{"id":"r1","spec":"{spec}"}}"#));
        let mut reports = 0;
        let done = loop {
            let line = next();
            assert_eq!(line.get("id").and_then(Json::as_str), Some("r1"));
            if let Some(done) = line.get("done") {
                break done.clone();
            }
            assert!(line.get("report").is_some(), "unexpected line");
            reports += 1;
        };
        assert_eq!(reports, 2);
        assert_eq!(done.get("jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(
            done.get("profile_computations").and_then(Json::as_u64),
            Some(2)
        );

        // Same matrices again: everything comes from the shared cache.
        send(&mut conn, &format!(r#"{{"id":"r2","spec":"{spec}"}}"#));
        let done = loop {
            let line = next();
            if let Some(done) = line.get("done") {
                break done.clone();
            }
        };
        assert_eq!(done.get("profile_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(
            done.get("profile_computations").and_then(Json::as_u64),
            Some(0)
        );

        // STATUS sees the cross-request cache hits and service counters.
        send(&mut conn, r#"{"id":"s1","status":true}"#);
        let status = next();
        let body = status.get("status").cloned().unwrap();
        let counter = |name: &str| {
            body.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(counter("engine.cache.hits"), 2);
        assert_eq!(counter("engine.cache.computations"), 2);
        assert_eq!(counter("serve.completed"), 2);
        assert!(body
            .get("gauges")
            .and_then(|g| g.get("engine.cache.size"))
            .is_some());
        // The extended STATUS carries the request-latency histogram with
        // percentiles and a series object with every window (rates are
        // null this early — the sampler has at most one sample).
        let latency = body
            .get("histograms")
            .and_then(|h| h.get("serve.request_latency_ns"))
            .expect("latency histogram present");
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(2));
        assert!(latency.get("p50").and_then(Json::as_u64).unwrap() > 0);
        let series = body.get("series").expect("series present");
        for (label, _) in obs::series::WINDOWS {
            let window = series
                .get("windows")
                .and_then(|w| w.get(label))
                .unwrap_or_else(|| panic!("window {label} missing"));
            assert!(window.get("jobs_per_sec").is_some());
            assert!(window.get("cache_hit_rate_pct").is_some());
        }

        // TRACE of a finished request: the phase tree has queue-wait,
        // cache-lookup, compute and stream-out with real durations.
        send(&mut conn, r#"{"id":"t1","trace":"r1"}"#);
        let trace = next();
        let tree = trace.get("trace").cloned().unwrap();
        assert_eq!(tree.get("request").and_then(Json::as_str), Some("r1"));
        assert!(tree.get("total_ns").and_then(Json::as_u64).unwrap() > 0);
        let phases = tree.get("phases").and_then(Json::as_array).unwrap();
        let phase = |name: &str| {
            phases
                .iter()
                .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("phase {name} missing"))
        };
        for name in ["queue-wait", "cache-lookup", "compute", "stream-out"] {
            let p = phase(name);
            assert!(
                p.get("wall_ns").and_then(Json::as_u64).unwrap() > 0,
                "{name} has zero duration"
            );
        }
        // Two jobs -> the per-domain fan-out merged under compute.
        assert!(phase("compute")
            .get("children")
            .and_then(Json::as_array)
            .is_some());

        // TRACE of an unknown id is a typed not_found error.
        send(&mut conn, r#"{"id":"t2","trace":"nope"}"#);
        let error = next();
        assert_eq!(
            error
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("not_found")
        );

        // METRICS round-trips the strict Prometheus checker and carries
        // the live counters.
        send(&mut conn, r#"{"id":"m1","metrics":true}"#);
        let metrics = next();
        let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
        let samples = obs::prom::check(text).unwrap_or_else(|e| panic!("bad exposition: {e}"));
        assert!(samples > 0);
        assert!(text.contains("spmv_serve_completed 2"), "{text}");
        assert!(
            text.contains("# TYPE spmv_serve_request_latency_ns histogram"),
            "{text}"
        );

        // Malformed and invalid-spec lines answer with typed errors.
        send(&mut conn, "this is not json");
        let error = next();
        assert_eq!(
            error
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
        send(&mut conn, r#"{"id":"r3","spec":"no such directive"}"#);
        let error = next();
        assert_eq!(error.get("id").and_then(Json::as_str), Some("r3"));
        assert_eq!(
            error
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_request")
        );

        // Protocol shutdown: ack, then the daemon drains and exits.
        send(&mut conn, r#"{"id":"q1","shutdown":true}"#);
        let ack = next();
        assert!(ack.get("shutdown").is_some());
        let summary = handle.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.completed, 2);
        // bad JSON, bad spec, unknown trace id.
        assert_eq!(summary.errors, 3);
    }
}
