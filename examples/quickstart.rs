//! Quickstart: generate a sparse matrix, run SpMV, classify it, predict
//! its cache misses with the locality model, and check the prediction
//! against the A64FX simulator.
//!
//! Run: `cargo run --release --example quickstart`

use a64fx_spmv::prelude::*;

fn main() {
    // A circuit-like matrix (nearly tridiagonal plus random long-range
    // connections): its x-vector reuse is what the sector cache protects.
    let matrix = corpus::banded::tridiag_plus_random(32_000, 1, 2023);
    let cfg = MachineConfig::a64fx_scaled(16);
    println!(
        "matrix: {} rows, {} nonzeros, {:.1} KiB CSR data",
        matrix.num_rows(),
        matrix.nnz(),
        matrix.matrix_bytes() as f64 / 1024.0
    );

    // 1. Run the actual kernel: y <- y + A x.
    let x = vec![1.0; matrix.num_cols()];
    let mut y = vec![0.0; matrix.num_rows()];
    let partition = RowPartition::static_rows(matrix.num_rows(), 8);
    spmv::spmv_parallel(&matrix, &x, &mut y, &partition);
    println!("spmv done: y[0] = {}, y[n-1] = {}", y[0], y[y.len() - 1]);

    // 2. Where does the matrix fall in the paper's classification?
    let threads = 48;
    let class = classify_for(&matrix, &cfg.clone().with_l2_sector(5), threads);
    println!("classification with 5 sector-1 ways: {}", class.label());

    // 3. Model prediction (method B: single x-trace pass + analytics).
    let settings = [SectorSetting::Off, SectorSetting::L2Ways(5)];
    let preds = predict(&matrix, &cfg, Method::B, &settings, threads);
    for p in &preds {
        println!(
            "model: sector {:>7} -> {:>8} predicted L2 misses/iteration",
            p.setting.label(),
            p.l2_misses
        );
    }

    // 4. Simulator measurement of the same two configurations, 48 threads.
    let base = simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, threads, 1);
    let part_cfg = cfg.clone().with_l2_sector(5);
    let part = simulate_spmv(&matrix, &part_cfg, ArraySet::MATRIX_STREAM, threads, 1);
    println!(
        "simulator: off -> {} misses, 5 ways -> {} misses",
        base.pmu.l2_misses(),
        part.pmu.l2_misses()
    );

    // 5. Estimated performance impact.
    let perf_base = estimate(&cfg, matrix.nnz(), &base);
    let perf_part = estimate(&part_cfg, matrix.nnz(), &part);
    println!(
        "estimated speedup from the sector cache: {:.3}x ({:?} -> {:?})",
        perf_base.seconds / perf_part.seconds,
        perf_base.bottleneck,
        perf_part.bottleneck
    );
}
