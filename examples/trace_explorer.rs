//! Trace explorer: reproduces the paper's Fig. 1 on a tiny matrix —
//! the sparsity pattern, the cache-line layout of the five SpMV arrays,
//! the derived memory trace, and each reference's reuse distance.
//!
//! Run: `cargo run --example trace_explorer`

use a64fx_spmv::prelude::*;
use memtrace::spmv_trace;

fn main() {
    // The paper's Fig. 1 matrix: 4x4 with 7 nonzeros, 16-byte lines.
    let matrix = CsrMatrix::from_parts(
        4,
        4,
        vec![0, 2, 3, 5, 7],
        vec![1, 2, 0, 2, 3, 1, 3],
        vec![1.0; 7],
    );
    let layout = DataLayout::new(&matrix, 16);

    println!("# sparsity pattern (Fig. 1a)");
    for r in 0..matrix.num_rows() {
        let mut row = String::new();
        for c in 0..matrix.num_cols() {
            row.push(if matrix.get(r, c).is_some() { 'x' } else { '.' });
            row.push(' ');
        }
        println!("  {row}");
    }

    println!("\n# cache-line layout (Fig. 1c), 16-byte lines");
    for array in Array::ALL {
        let first = layout.line_of(array, 0);
        let count = layout.array_lines(array);
        println!(
            "  {:<7} lines {:>2}..{:>2} ({} elements)",
            array.name(),
            first,
            first + count - 1,
            layout.array_elements(array)
        );
    }

    println!("\n# derived memory trace (Fig. 1b) with reuse distances");
    let mut sink = memtrace::VecSink::new();
    spmv_trace::trace_spmv(&matrix, &layout, &mut sink);
    let mut stack = ExactStack::new();
    println!("  {:<4} {:<7} {:>4}  reuse distance", "#", "array", "line");
    for (i, a) in sink.trace.iter().enumerate() {
        let rd = stack.access(a.line);
        let rd_str = match rd {
            Some(d) => d.to_string(),
            None => "inf (cold)".to_string(),
        };
        println!("  {:<4} {:<7} {:>4}  {}", i, a.array.name(), a.line, rd_str);
    }

    // Which references would hit in a tiny 4-line fully associative cache?
    let mut hist = ReuseHistogram::new();
    let mut stack2 = ExactStack::new();
    for a in &sink.trace {
        hist.record(stack2.access(a.line));
    }
    println!(
        "\n# with a 4-line LRU cache: {} hits, {} misses out of {} references",
        hist.hits(4),
        hist.misses(4),
        hist.total()
    );
}
