//! Way-partition optimizer: find the best sector split for a matrix, for
//! two- and three-group routings — the co-design workflow from the
//! paper's conclusion.
//!
//! Run: `cargo run --release --example way_optimizer [-- path/to/matrix.mtx]`

use a64fx_spmv::prelude::*;
use locality_core::optimize::PartitionOptimizer;

fn main() {
    let matrix = match std::env::args().nth(1) {
        Some(path) => sparsemat::mm::read_csr_file(&path).expect("failed to read matrix"),
        None => corpus::banded::random_banded(48_000, 3_000, 14, 11),
    };
    let cfg = MachineConfig::a64fx_scaled(16);
    let threads = 12;
    println!(
        "matrix: {} rows, {} nnz; L2 segment {} KiB, {} ways, {} threads\n",
        matrix.num_rows(),
        matrix.num_cols(),
        cfg.l2.size_bytes >> 10,
        cfg.l2.ways,
        threads
    );

    // The paper's Listing-1 routing: matrix stream vs everything else.
    let two = [
        ArraySet::of(&[Array::X, Array::Y, Array::RowPtr]),
        ArraySet::MATRIX_STREAM,
    ];
    let opt = PartitionOptimizer::from_spmv(&matrix, &cfg, &two, threads);
    println!("two-group routing {{x,y,rowptr}} | {{a,colidx}}:");
    println!("  {:>4} {:>14}", "ways", "pred. misses");
    for w1 in 1..cfg.l2.ways {
        let total = opt.misses_for(&[cfg.l2.ways - w1, w1]);
        println!("  {:>2}+{:<2} {:>13}", cfg.l2.ways - w1, w1, total);
    }
    let (alloc, best) = opt.best_allocation();
    println!(
        "  optimum: {}+{} ways -> {} misses/iteration\n",
        alloc[0], alloc[1], best
    );

    // A finer routing the FCC directives cannot express (max 2 sectors),
    // but the A64FX hardware could (up to 4): isolate x alone.
    let three = [
        ArraySet::of(&[Array::X]),
        ArraySet::of(&[Array::Y, Array::RowPtr]),
        ArraySet::MATRIX_STREAM,
    ];
    let opt3 = PartitionOptimizer::from_spmv(&matrix, &cfg, &three, threads);
    let (alloc3, best3) = opt3.best_allocation();
    println!(
        "three-group routing {{x}} | {{y,rowptr}} | {{a,colidx}}: optimum {:?} -> {} misses",
        alloc3, best3
    );
    if best3 < best {
        println!(
            "  a third sector would save another {:.1}% — a co-design argument for >2 sectors",
            100.0 * (best as f64 - best3 as f64) / best as f64
        );
    } else {
        println!("  no benefit over two sectors for this matrix");
    }
}
