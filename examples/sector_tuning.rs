//! Sector-cache auto-tuning: pick the best L2 way split for a matrix.
//!
//! Uses the cheap method (B) model to sweep every legal sector-1 way count
//! and recommends the one minimising predicted misses, then validates the
//! recommendation against the simulator. Pass a Matrix Market file to tune
//! a real matrix:
//!
//! Run: `cargo run --release --example sector_tuning [-- path/to/matrix.mtx]`

use a64fx_spmv::prelude::*;

fn main() {
    let matrix = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            sparsemat::mm::read_csr_file(&path).expect("failed to read Matrix Market file")
        }
        None => {
            println!("no file given; tuning a generated power-law matrix");
            corpus::random::power_law(60_000, 12, 0.9, 7)
        }
    };
    let cfg = MachineConfig::a64fx_scaled(16);
    let threads = 8;
    println!(
        "matrix: {} rows, {} nnz; machine: {} KiB L2/domain, {} threads\n",
        matrix.num_rows(),
        matrix.nnz(),
        cfg.l2.size_bytes >> 10,
        threads
    );

    // Model sweep over every legal way split (1..ways-1).
    let settings: Vec<SectorSetting> = std::iter::once(SectorSetting::Off)
        .chain((1..cfg.l2.ways).map(SectorSetting::L2Ways))
        .collect();
    let preds = predict(&matrix, &cfg, Method::B, &settings, threads);

    println!("{:<10} {:>14} {:>9}", "setting", "pred. misses", "vs off");
    let off = preds[0].l2_misses.max(1);
    for p in &preds {
        println!(
            "{:<10} {:>14} {:>8.1}%",
            p.setting.label(),
            p.l2_misses,
            100.0 * (off as f64 - p.l2_misses as f64) / off as f64
        );
    }

    let best = preds.iter().min_by_key(|p| p.l2_misses).unwrap();
    println!(
        "\nmodel recommendation: sector cache {}",
        best.setting.label()
    );

    // Validate the recommendation in the simulator.
    let base = simulate_spmv(&matrix, &cfg, ArraySet::EMPTY, threads, 1);
    let (sim_best, label) = match best.setting {
        SectorSetting::Off => (base.pmu.l2_misses(), "off".to_string()),
        SectorSetting::L2Ways(w) => {
            let c = cfg.clone().with_l2_sector(w);
            let s = simulate_spmv(&matrix, &c, ArraySet::MATRIX_STREAM, threads, 1);
            (s.pmu.l2_misses(), format!("{w} ways"))
        }
    };
    println!(
        "simulator check: off = {} misses, {} = {} misses ({:.1}% reduction)",
        base.pmu.l2_misses(),
        label,
        sim_best,
        100.0 * (base.pmu.l2_misses() as f64 - sim_best as f64)
            / base.pmu.l2_misses().max(1) as f64
    );
}
