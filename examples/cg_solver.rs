//! Conjugate-gradient solver built on the library's SpMV kernels — the
//! iterative-SpMV workload the paper's cache analysis targets (repeated
//! `y <- A x` with a reusable `x`).
//!
//! Solves a 2-D Poisson problem with parallel CSR SpMV, reports
//! convergence, and shows what the locality model says about running the
//! solve with the sector cache enabled.
//!
//! Run: `cargo run --release --example cg_solver`

use a64fx_spmv::prelude::*;

/// Unpreconditioned CG for symmetric positive definite `A`, solving
/// `A x = b`. Returns (solution, iterations, final residual norm).
fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    partition: &RowPartition,
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize, f64) {
    let n = a.num_rows();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs_old.sqrt().max(1e-300);

    for iter in 0..max_iters {
        if rs_old.sqrt() / b_norm < tol {
            return (x, iter, rs_old.sqrt());
        }
        ap.iter_mut().for_each(|v| *v = 0.0);
        spmv::spmv_parallel(a, &p, &mut ap, partition);
        let pap: f64 = p.iter().zip(&ap).map(|(pi, api)| pi * api).sum();
        let alpha = rs_old / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    (x, max_iters, rs_old.sqrt())
}

fn main() {
    let side = 192;
    let a = corpus::stencil::laplacian_2d(side, side);
    let n = a.num_rows();
    println!(
        "2-D Poisson, {side}x{side} grid: {} unknowns, {} nonzeros",
        n,
        a.nnz()
    );

    // Right-hand side: a point source in the middle.
    let mut b = vec![0.0; n];
    b[n / 2 + side / 2] = 1.0;

    let threads = 8;
    let partition = RowPartition::static_rows(n, threads);
    let t0 = std::time::Instant::now();
    let (x, iters, residual) = conjugate_gradient(&a, &b, &partition, 1e-8, 10 * n);
    let elapsed = t0.elapsed();
    println!(
        "CG converged in {iters} iterations (residual {residual:.3e}) in {:.1} ms on {threads} threads",
        elapsed.as_secs_f64() * 1000.0
    );
    println!(
        "solution peak: {:.6}",
        x.iter().cloned().fold(f64::MIN, f64::max)
    );

    // What would the sector cache do for this solve on the A64FX?
    let cfg = MachineConfig::a64fx_scaled(16);
    let class = classify_for(&a, &cfg.clone().with_l2_sector(5), threads);
    let preds = predict(
        &a,
        &cfg,
        Method::B,
        &[SectorSetting::Off, SectorSetting::L2Ways(5)],
        threads,
    );
    println!(
        "\nlocality model: {} ; per-SpMV L2 misses {} (off) vs {} (5 ways) -> {:.1}% fewer",
        class.label(),
        preds[0].l2_misses,
        preds[1].l2_misses,
        100.0 * (preds[0].l2_misses as f64 - preds[1].l2_misses as f64)
            / preds[0].l2_misses.max(1) as f64
    );
    println!("(each CG iteration performs one SpMV; the saving applies per iteration)");

    // The SpMV-only view undercounts the iteration: CG also sweeps p, r,
    // x and ap between the SpMVs. The CG scenario workload traces this
    // exact loop body — the SpMV plus the four vector passes, with the
    // three reused solver vectors sharing the reusable-x role — so the
    // model prices the whole iteration, not just the kernel. Method (A)
    // replays the full trace; (B) prices only the gather locality and
    // accounts the sweeps as gap inflation, so use (A) here.
    let cg = ScenarioSpec::Cg.apply(Workload::build(
        a.clone(),
        FormatSpec::Csr,
        ReorderSpec::None,
    ));
    let cg_preds = LocalityProfile::compute(&cg, &cfg, Method::A, threads)
        .evaluate(&cfg, &[SectorSetting::Off, SectorSetting::L2Ways(5)]);
    println!(
        "full CG-iteration trace (--workload cg): L2 misses {} (off) vs {} (5 ways) -> {:.1}% fewer",
        cg_preds[0].l2_misses,
        cg_preds[1].l2_misses,
        100.0 * (cg_preds[0].l2_misses as f64 - cg_preds[1].l2_misses as f64)
            / cg_preds[0].l2_misses.max(1) as f64
    );
}
